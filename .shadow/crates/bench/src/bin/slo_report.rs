//! SLO gate: judges a loadgen report against declared service-level
//! objectives and exits non-zero when the error budget is blown.
//!
//! ```text
//! cargo run -p datalab-bench --bin slo_report -- --input PATH
//!     [--availability R] [--latency-threshold-ms N] [--latency-goal R]
//!     [--out PATH]
//! ```
//!
//! Input is the JSON report written by the `loadgen` bin. Two SLIs are
//! evaluated over the whole run:
//!
//! * **Availability** — the fraction of requests that did not fail
//!   server-side (5xx or transport errors). Compared against
//!   `--availability` (default 0.99).
//! * **Latency** — the fraction of requests finishing under
//!   `--latency-threshold-ms` (default 2000), computed conservatively
//!   from the report's histogram buckets: a request only counts as fast
//!   when its whole bucket is under the threshold. Compared against
//!   `--latency-goal` (default 0.95).
//!
//! Both SLIs also get a burn rate (bad fraction over allowed budget);
//! burn ≥ 1 means the budget is being spent faster than the target
//! allows. Exit code: `0` when both SLIs meet target, `1` on violation,
//! `2` on usage or input errors — so CI can use this bin as a blocking
//! gate on serving-smoke output.

use datalab_bench::telemetry_dir;
use datalab_server::Json;
use datalab_telemetry::burn_rate;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    input: PathBuf,
    availability: f64,
    latency_threshold_ms: u64,
    latency_goal: f64,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut parsed = Args {
        input: PathBuf::new(),
        availability: 0.99,
        latency_threshold_ms: 2_000,
        latency_goal: 0.95,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        match arg.as_str() {
            "--input" => input = Some(PathBuf::from(take("--input")?)),
            "--availability" => {
                parsed.availability = take("--availability")?
                    .parse()
                    .map_err(|e| format!("--availability: {e}"))?
            }
            "--latency-threshold-ms" => {
                parsed.latency_threshold_ms = take("--latency-threshold-ms")?
                    .parse()
                    .map_err(|e| format!("--latency-threshold-ms: {e}"))?
            }
            "--latency-goal" => {
                parsed.latency_goal = take("--latency-goal")?
                    .parse()
                    .map_err(|e| format!("--latency-goal: {e}"))?
            }
            "--out" => parsed.out = Some(PathBuf::from(take("--out")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    parsed.input = input.ok_or_else(|| "--input is required".to_string())?;
    if !(0.0..=1.0).contains(&parsed.availability) || !(0.0..=1.0).contains(&parsed.latency_goal) {
        return Err("--availability and --latency-goal must be in 0..=1".to_string());
    }
    Ok(parsed)
}

/// The two SLI verdicts judged from one loadgen report.
#[derive(Debug, PartialEq)]
struct Verdict {
    total: u64,
    bad: u64,
    availability: f64,
    availability_burn: f64,
    fast_enough: u64,
    latency_ok_ratio: f64,
    latency_burn: f64,
    pass: bool,
}

/// Judges a parsed loadgen report against the targets.
///
/// Server-side failures are 5xx statuses plus transport errors (status
/// `0` in the report); 4xx client errors do not count against
/// availability, matching the serving layer's own SLO policy.
fn judge(report: &Json, args: &Args) -> Result<Verdict, String> {
    let total = report
        .get("sent")
        .and_then(Json::as_f64)
        .ok_or_else(|| "report is missing `sent`".to_string())? as u64;
    let Some(Json::Obj(statuses)) = report.get("statuses") else {
        return Err("report is missing `statuses`".to_string());
    };
    let mut bad = 0u64;
    for (status, count) in statuses {
        let code: u64 = status
            .parse()
            .map_err(|e| format!("bad status key `{status}`: {e}"))?;
        let count = count
            .as_f64()
            .ok_or_else(|| format!("bad count for status {status}"))? as u64;
        if code == 0 || code >= 500 {
            bad += count;
        }
    }
    if bad > total {
        return Err(format!("{bad} failures exceed {total} requests sent"));
    }

    let latency = report
        .get("latency_us")
        .ok_or_else(|| "report is missing `latency_us`".to_string())?;
    let bounds = latency
        .get("bounds")
        .and_then(Json::as_arr)
        .ok_or_else(|| "report is missing `latency_us.bounds`".to_string())?;
    let counts = latency
        .get("counts")
        .and_then(Json::as_arr)
        .ok_or_else(|| "report is missing `latency_us.counts`".to_string())?;
    if counts.len() != bounds.len() + 1 {
        return Err(format!(
            "histogram shape mismatch: {} bounds, {} counts",
            bounds.len(),
            counts.len()
        ));
    }
    let threshold_us = args.latency_threshold_ms.saturating_mul(1_000);
    let max = latency.get("max").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    // A request is provably fast only when its whole bucket is: count
    // buckets with an upper bound at or under the threshold. When even
    // the slowest observed request beats the threshold, everything does.
    let fast_enough = if max <= threshold_us {
        total
    } else {
        let mut fast = 0u64;
        for (i, bound) in bounds.iter().enumerate() {
            let bound = bound
                .as_f64()
                .ok_or_else(|| format!("bad bound at index {i}"))? as u64;
            let count = counts[i]
                .as_f64()
                .ok_or_else(|| format!("bad count at index {i}"))? as u64;
            if bound <= threshold_us {
                fast += count;
            }
        }
        fast.min(total)
    };

    let availability = if total == 0 {
        1.0
    } else {
        1.0 - bad as f64 / total as f64
    };
    let latency_ok_ratio = if total == 0 {
        1.0
    } else {
        fast_enough as f64 / total as f64
    };
    let availability_burn = burn_rate(bad, total, args.availability);
    let latency_burn = burn_rate(total - fast_enough, total, args.latency_goal);
    let pass = availability >= args.availability && latency_ok_ratio >= args.latency_goal;
    Ok(Verdict {
        total,
        bad,
        availability,
        availability_burn,
        fast_enough,
        latency_ok_ratio,
        latency_burn,
        pass,
    })
}

fn verdict_json(v: &Verdict, args: &Args) -> String {
    format!(
        "{{\"targets\":{{\"availability\":{},\"latency_threshold_ms\":{},\"latency_goal\":{}}},\
         \"total\":{},\"bad\":{},\"availability\":{:.6},\"availability_burn\":{:.3},\
         \"fast_enough\":{},\"latency_ok_ratio\":{:.6},\"latency_burn\":{:.3},\"pass\":{}}}",
        args.availability,
        args.latency_threshold_ms,
        args.latency_goal,
        v.total,
        v.bad,
        v.availability,
        v.availability_burn,
        v.fast_enough,
        v.latency_ok_ratio,
        v.latency_burn,
        v.pass
    )
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let report = Json::parse(&text).map_err(|e| format!("{}: {e}", args.input.display()))?;
    let verdict = judge(&report, &args)?;

    println!("slo report: {}", args.input.display());
    println!(
        "  availability {:.4} (target {}, burn {:.2})",
        verdict.availability, args.availability, verdict.availability_burn
    );
    println!(
        "  latency      {:.4} under {}ms (goal {}, burn {:.2})",
        verdict.latency_ok_ratio,
        args.latency_threshold_ms,
        args.latency_goal,
        verdict.latency_burn
    );
    println!(
        "  requests     {} total, {} failed, {} fast enough",
        verdict.total, verdict.bad, verdict.fast_enough
    );
    println!(
        "  verdict      {}",
        if verdict.pass { "PASS" } else { "FAIL" }
    );

    let path = match &args.out {
        Some(p) => p.clone(),
        None => telemetry_dir()
            .map_err(|e| format!("cannot create target/telemetry: {e}"))?
            .join("slo_report.json"),
    };
    std::fs::write(&path, verdict_json(&verdict, &args))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("slo report written: {}", path.display());

    Ok(if verdict.pass { 0 } else { 1 })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("slo_report: {e}");
            eprintln!(
                "usage: slo_report --input PATH [--availability R] \
                 [--latency-threshold-ms N] [--latency-goal R] [--out PATH]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(availability: f64, threshold_ms: u64, goal: f64) -> Args {
        Args {
            input: PathBuf::new(),
            availability,
            latency_threshold_ms: threshold_ms,
            latency_goal: goal,
            out: None,
        }
    }

    fn report(statuses: &str, max_us: u64, bounds: &str, counts: &str) -> Json {
        Json::parse(&format!(
            "{{\"sent\":100,\"statuses\":{{{statuses}}},\
             \"latency_us\":{{\"max\":{max_us},\"bounds\":[{bounds}],\"counts\":[{counts}]}}}}"
        ))
        .expect("test report parses")
    }

    #[test]
    fn clean_run_passes() {
        let r = report("\"200\":100", 900, "1000,10000", "100,0,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert!(v.pass, "{v:?}");
        assert_eq!((v.total, v.bad, v.fast_enough), (100, 0, 100));
        assert_eq!(v.availability, 1.0);
        assert_eq!(v.availability_burn, 0.0);
    }

    #[test]
    fn server_errors_blow_the_availability_budget() {
        // 5 of 100 failed against a 1% budget: burn 5x, no pass.
        let r = report("\"200\":95,\"503\":5", 900, "1000", "100,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert!(!v.pass, "{v:?}");
        assert_eq!(v.bad, 5);
        assert!((v.availability - 0.95).abs() < 1e-9);
        assert!((v.availability_burn - 5.0).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn transport_errors_count_as_failures() {
        let r = report("\"200\":98,\"0\":2", 900, "1000", "100,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert_eq!(v.bad, 2);
        assert!(!v.pass);
    }

    #[test]
    fn client_errors_do_not_count_against_availability() {
        let r = report("\"200\":90,\"400\":6,\"429\":4", 900, "1000", "100,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert_eq!(v.bad, 0);
        assert!(v.pass, "{v:?}");
    }

    #[test]
    fn slow_tail_fails_the_latency_goal_conservatively() {
        // Threshold 2ms; buckets 1ms / 10ms. 10 requests landed in the
        // 1ms..10ms bucket — not provably fast, so they count slow.
        let r = report("\"200\":100", 9_000, "1000,10000", "90,10,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert_eq!(v.fast_enough, 90);
        assert!(!v.pass, "{v:?}");
        assert!((v.latency_burn - 2.0).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn fast_max_short_circuits_bucket_resolution() {
        // Coarse buckets would undercount, but max proves every request
        // beat the threshold.
        let r = report("\"200\":100", 1_500, "1000,10000", "50,50,0");
        let v = judge(&r, &args(0.99, 2, 0.95)).unwrap();
        assert_eq!(v.fast_enough, 100);
        assert!(v.pass, "{v:?}");
    }

    #[test]
    fn malformed_reports_are_input_errors_not_panics() {
        let a = args(0.99, 2, 0.95);
        for bad in [
            "{}",
            "{\"sent\":10}",
            "{\"sent\":10,\"statuses\":{\"200\":10}}",
            "{\"sent\":10,\"statuses\":{\"abc\":1},\"latency_us\":{\"bounds\":[],\"counts\":[0]}}",
            "{\"sent\":10,\"statuses\":{},\"latency_us\":{\"bounds\":[1],\"counts\":[0]}}",
        ] {
            let r = Json::parse(bad).unwrap();
            assert!(judge(&r, &a).is_err(), "{bad}");
        }
    }
}
