//! Generates a workload-driven fleet report: sampled nl2sql / nl2code /
//! nl2vis / insight tasks run through the full platform, one run record
//! per task, aggregated and written as JSON for `obsdiff` to gate.
//!
//! ```text
//! cargo run -p datalab-bench --bin fleet_report -- [--seed N] [--tasks N] [--workers W]
//!     [--chaos-rate R] [--chaos-seed N] [--out PATH] [--no-profile]
//! ```
//!
//! Defaults: seed 7, 3 tasks per workload family, 1 worker (serial),
//! chaos rate 0.0 (no fault injection), output
//! `target/telemetry/fleet_report.json`. With `--workers W > 1` the
//! sharded parallel executor is used; the report is identical to the
//! serial one except for its wall-clock fields. `--chaos-rate R > 0`
//! injects transport faults at total rate R (deterministic in
//! `--chaos-seed`); the report then carries nonzero resilience counters.
//!
//! Alongside the JSON report, the run's span trees are folded into
//! collapsed-stack profiles — `profile_wall.folded`, `profile_cpu.folded`,
//! and `profile_alloc.folded` next to the report — ready for any
//! flamegraph renderer (`--no-profile` skips them). The binary installs
//! the counting allocator, so the alloc weighting and the report's
//! `alloc` block carry real per-query attribution.

use datalab_bench::telemetry_dir;
use datalab_core::{folded_profile, folded_total, ProfileWeight};
use datalab_telemetry::CountingAlloc;
use datalab_workloads::{run_fleet_with_records, FleetConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// Attribute every allocation of the fleet run to its span, so the
/// report's `alloc.*_per_query` metrics (gated by `obsdiff`) and the
/// alloc-weighted folded profile are populated.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() -> ExitCode {
    let mut config = FleetConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut profile = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} expects a value"));
        let result = match arg.as_str() {
            "--seed" => take("--seed").and_then(|v| {
                v.parse()
                    .map(|n| config.seed = n)
                    .map_err(|e| format!("--seed: {e}"))
            }),
            "--tasks" => take("--tasks").and_then(|v| {
                v.parse()
                    .map(|n| config.tasks_per_workload = n)
                    .map_err(|e| format!("--tasks: {e}"))
            }),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n| config.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--chaos-rate" => take("--chaos-rate").and_then(|v| {
                v.parse()
                    .map(|n| config.chaos_rate = n)
                    .map_err(|e| format!("--chaos-rate: {e}"))
            }),
            "--chaos-seed" => take("--chaos-seed").and_then(|v| {
                v.parse()
                    .map(|n| config.chaos_seed = n)
                    .map_err(|e| format!("--chaos-seed: {e}"))
            }),
            "--out" => take("--out").map(|v| out = Some(PathBuf::from(v))),
            "--no-profile" => {
                profile = false;
                Ok(())
            }
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            eprintln!("fleet_report: {e}");
            eprintln!(
                "usage: fleet_report [--seed N] [--tasks N] [--workers W] \
                 [--chaos-rate R] [--chaos-seed N] [--out PATH] [--no-profile]"
            );
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "fleet_report: seed={} tasks_per_workload={} workers={} chaos_rate={} chaos_seed={}",
        config.seed,
        config.tasks_per_workload,
        config.workers.max(1),
        config.chaos_rate,
        config.chaos_seed
    );
    let (report, records) = run_fleet_with_records(&config);
    print!("{}", report.render());

    let path = match out {
        Some(p) => p,
        None => match telemetry_dir() {
            Ok(dir) => dir.join("fleet_report.json"),
            Err(e) => {
                eprintln!("fleet_report: cannot create target/telemetry: {e}");
                return ExitCode::from(2);
            }
        },
    };
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("fleet_report: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("fleet report written: {}", path.display());

    if profile {
        let dir = path.parent().map(PathBuf::from).unwrap_or_default();
        for (weight, file) in [
            (ProfileWeight::Wall, "profile_wall.folded"),
            (ProfileWeight::Cpu, "profile_cpu.folded"),
            (ProfileWeight::AllocBytes, "profile_alloc.folded"),
        ] {
            let folded = folded_profile(&records, weight);
            let folded_path = dir.join(file);
            if let Err(e) = std::fs::write(&folded_path, &folded) {
                eprintln!("fleet_report: cannot write {}: {e}", folded_path.display());
                return ExitCode::from(2);
            }
            println!(
                "folded profile ({}) written: {} ({} stacks, total weight {})",
                weight.as_str(),
                folded_path.display(),
                folded.lines().count(),
                folded_total(&folded)
            );
        }
        // Self-check the wall profile against the report: folded stack
        // weights partition the recorded root spans, so the totals must
        // agree exactly.
        let wall = folded_profile(&records, ProfileWeight::Wall);
        let span_total: u64 = records
            .iter()
            .flat_map(|r| r.summary.spans.iter())
            .map(|s| s.dur_us)
            .sum();
        if wall.is_empty() || folded_total(&wall) != span_total {
            eprintln!(
                "fleet_report: wall profile weight {} disagrees with recorded span time {}",
                folded_total(&wall),
                span_total
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
