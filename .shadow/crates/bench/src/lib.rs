//! Shared helpers for the DataLab benchmark harness.

#![warn(missing_docs)]

use datalab_telemetry::Telemetry;
use std::path::PathBuf;

/// Prints a section header for a reproduced table/figure.
pub fn header(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; paper values quoted for shape comparison)");
    println!("==================================================================");
}

/// Prints one metric row: benchmark, metric, and per-method values.
pub fn row(benchmark: &str, metric: &str, cells: &[(&str, String)]) {
    let body: Vec<String> = cells.iter().map(|(m, v)| format!("{m}={v}")).collect();
    println!("{benchmark:<18} {metric:<22} {}", body.join("  "));
}

/// The directory telemetry artifacts land in: `target/telemetry/`
/// (honouring `CARGO_TARGET_DIR`), created on first use.
pub fn telemetry_dir() -> std::io::Result<PathBuf> {
    let target =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()));
    let dir = target.join("telemetry");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a bench run's telemetry (metrics registry + token attribution)
/// as `target/telemetry/<bench_name>_telemetry.json`, so runs can be
/// diffed offline. Creates the directory if needed. Returns the path
/// written, or `None` when the directory is not writable (benches must
/// not fail on I/O).
pub fn write_metrics_snapshot(bench_name: &str, telemetry: &Telemetry) -> Option<PathBuf> {
    let dir = match telemetry_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("telemetry snapshot not written ({e})");
            return None;
        }
    };
    let path = dir.join(format!("{bench_name}_telemetry.json"));
    match std::fs::write(&path, telemetry.snapshot_json()) {
        Ok(()) => {
            println!("telemetry snapshot: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("telemetry snapshot not written ({e})");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lands_in_the_telemetry_dir() {
        let t = Telemetry::new();
        t.metrics().incr("llm.calls", 3);
        t.record_llm_call(10, 2);
        let path = write_metrics_snapshot("bench_lib_test", &t).expect("writable target dir");
        assert_eq!(
            path.parent().and_then(|p| p.file_name()).unwrap(),
            "telemetry"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"llm.calls\""), "{text}");
        assert!(text.contains("\"attribution\""), "{text}");
        std::fs::remove_file(path).ok();
    }
}
