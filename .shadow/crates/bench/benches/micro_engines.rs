//! Criterion micro-benchmarks for the substrate engines: SQL execution,
//! knowledge retrieval, shared-buffer operations, frame group-by, and
//! pymini analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use datalab_agents::{Content, InformationUnit, SharedBuffer};
use datalab_frame::{AggExpr, AggFunc, DataFrame, DataType, Value};
use datalab_knowledge::{retrieve, IndexTask, KnowledgeIndex, RetrievalConfig};
use datalab_llm::SimLlm;
use datalab_sql::{run_sql, Database};
use datalab_workloads::enterprise::{enterprise_corpus, generate_corpus_knowledge};
use std::hint::black_box;

fn big_frame(rows: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "k",
            DataType::Str,
            (0..rows)
                .map(|i| Value::Str(format!("g{}", i % 40)))
                .collect(),
        ),
        (
            "v",
            DataType::Int,
            (0..rows).map(|i| Value::Int(i as i64 % 1000)).collect(),
        ),
    ])
    .expect("bench frame")
}

fn bench_sql(c: &mut Criterion) {
    let mut db = Database::new();
    db.insert("t", big_frame(5_000));
    c.bench_function("sql/group_by_5k_rows", |b| {
        b.iter(|| {
            black_box(
                run_sql(
                    "SELECT k, SUM(v) FROM t WHERE v > 100 GROUP BY k ORDER BY k LIMIT 10",
                    &db,
                )
                .expect("runs"),
            )
        })
    });
}

fn bench_frame(c: &mut Criterion) {
    let df = big_frame(10_000);
    c.bench_function("frame/group_by_10k_rows", |b| {
        b.iter(|| {
            black_box(
                df.group_by(&["k"], &[AggExpr::new(AggFunc::Sum, "v", "s")])
                    .expect("groups"),
            )
        })
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let corpus = enterprise_corpus(7, 6);
    let llm = SimLlm::gpt4();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    let index = KnowledgeIndex::build(&gk.graph, IndexTask::Nl2Dsl);
    c.bench_function("knowledge/retrieve", |b| {
        b.iter(|| {
            black_box(retrieve(
                &llm,
                &gk.graph,
                &index,
                "show me the income of TencentBI this year",
                &RetrievalConfig::default(),
            ))
        })
    });
}

fn bench_buffer(c: &mut Criterion) {
    c.bench_function("buffer/deposit_supersede", |b| {
        let buf = SharedBuffer::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            buf.deposit(InformationUnit {
                data_source: format!("t{}", i % 16),
                role: "sql_agent".into(),
                action: "q".into(),
                description: String::new(),
                content: Content::Text("x".into()),
                timestamp: 0,
            })
        })
    });
}

fn bench_pymini(c: &mut Criterion) {
    let src = "import pandas as pd\n\
               def clean(frame):\n    tmp = frame.dropna()\n    return tmp\n\
               stage = clean(raw_df)\n\
               agg = stage.groupby('region').agg(total=('amount', 'sum'))\n\
               final = agg.sort_values('total', ascending=False)";
    c.bench_function("pymini/analyze", |b| {
        b.iter(|| black_box(datalab_notebook::analyze(src)))
    });
}

criterion_group!(
    benches,
    bench_sql,
    bench_frame,
    bench_retrieval,
    bench_buffer,
    bench_pymini
);
criterion_main!(benches);
