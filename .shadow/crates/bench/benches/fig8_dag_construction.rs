//! Fig. 8 — time cost of notebook-level DAG construction (cold start) and
//! per-cell DAG updates, over the 50-notebook corpus (2-49 cells).

use datalab_bench::header;
use datalab_notebook::{CellDag, CellKind};
use datalab_workloads::notebooks::notebook_corpus;
use std::time::Instant;

fn main() {
    header(
        "FIGURE 8 — DAG CONSTRUCTION / UPDATE TIME",
        "paper: full construction < 250 ms (max 232.22 ms @ 35 cells); per-cell update < 10 ms (mean 3.78 ms)",
    );
    let corpus = notebook_corpus(88, 50, 49);
    let reps = 30;
    println!("{:>6} {:>16} {:>16}", "cells", "build (ms)", "update (ms)");
    let mut update_times = Vec::new();
    let mut max_build: (usize, f64) = (0, 0.0);
    for case in &corpus {
        let nb = &case.notebook;
        // Full (notebook-level) construction.
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = CellDag::build(nb);
        }
        let build_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        // Per-cell update: modify the first Python cell.
        let mut dag = CellDag::build(nb);
        let target = nb
            .cells()
            .iter()
            .find(|c| c.kind == CellKind::Python)
            .map(|c| c.id);
        let update_ms = match target {
            Some(id) => {
                let mut nb2 = nb.clone();
                let t1 = Instant::now();
                for r in 0..reps {
                    nb2.modify(id, format!("edited_{r} = {r} + 1"));
                    dag.update_cell(&nb2, id);
                }
                t1.elapsed().as_secs_f64() * 1000.0 / reps as f64
            }
            None => 0.0,
        };
        update_times.push(update_ms);
        if build_ms > max_build.1 {
            max_build = (nb.len(), build_ms);
        }
        println!("{:>6} {:>16.3} {:>16.3}", nb.len(), build_ms, update_ms);
    }
    let mean_update = update_times.iter().sum::<f64>() / update_times.len().max(1) as f64;
    let max_update = update_times.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!(
        "max full construction: {:.3} ms at {} cells (paper max: 232.22 ms @ 35 cells)",
        max_build.1, max_build.0
    );
    println!(
        "per-cell update: mean {:.3} ms, max {:.3} ms (paper: mean 3.78 ms, max 9.84 ms)",
        mean_update, max_update
    );
}
