//! Table I — end-to-end performance of DataLab vs SOTA baselines on the
//! eight research-benchmark analogues, all methods on the GPT-4 profile.

use datalab_bench::{header, row, write_metrics_snapshot};
use datalab_llm::SimLlm;
use datalab_telemetry::Telemetry;
use datalab_workloads::insight::{
    dabench_like, eval_dabench, eval_insightbench, insightbench_like, InsightMethod,
};
use datalab_workloads::nl2code::{ds1000_like, dseval_like, eval_code, CodeMethod};
use datalab_workloads::nl2sql::{bird_like, eval_sql, spider_like, SqlMethod};
use datalab_workloads::nl2vis::{eval_vis, nvbench_like, viseval_like, VisMethod};

const SEED: u64 = 2026;
const N: usize = 120;

fn main() {
    let llm = SimLlm::gpt4();
    let telemetry = Telemetry::new();
    llm.attach_telemetry(telemetry.clone());
    header(
        "TABLE I — END-TO-END PERFORMANCE ON RESEARCH BENCHMARKS",
        "paper Table I: DataLab wins BIRD/DS-1000/DSEval/InsightBench/VisEval-pass, \
         narrowly loses Spider (DAIL-SQL), nvBench & readability (LIDA), DABench (AgentPoirot)",
    );

    // ---- NL2SQL ----------------------------------------------------------
    for (suite, paper) in [
        (
            spider_like(SEED, N),
            "paper: DataLab 80.70 / DAIL 83.60 / DIN 82.80",
        ),
        (
            bird_like(SEED, N),
            "paper: DataLab 61.33 / DAIL 57.41 / DIN 55.90",
        ),
    ] {
        let cells: Vec<(&str, String)> =
            [SqlMethod::DataLab, SqlMethod::DailSql, SqlMethod::DinSql]
                .iter()
                .map(|m| (m.name(), format!("{:.2}", eval_sql(&suite, *m, &llm))))
                .collect();
        row(suite.name, "Execution Accuracy", &cells);
        println!("  {paper}");
    }

    // ---- NL2DSCode --------------------------------------------------------
    for (suite, paper) in [
        (
            ds1000_like(SEED, N),
            "paper: DataLab 53.80 / CoML 44.20 / CodeInt 51.60",
        ),
        (
            dseval_like(SEED, N),
            "paper: DataLab 80.99 / CoML 71.90 / CodeInt 80.58",
        ),
    ] {
        let cells: Vec<(&str, String)> = [
            CodeMethod::DataLab,
            CodeMethod::CoML,
            CodeMethod::CodeInterpreter,
        ]
        .iter()
        .map(|m| (m.name(), format!("{:.2}", eval_code(&suite, *m, &llm))))
        .collect();
        row(suite.name, "Pass Rate", &cells);
        println!("  {paper}");
    }

    // ---- NL2Insight --------------------------------------------------------
    let da = dabench_like(SEED, 80);
    let cells: Vec<(&str, String)> = [
        InsightMethod::DataLab,
        InsightMethod::AutoGen,
        InsightMethod::AgentPoirot,
    ]
    .iter()
    .map(|m| (m.name(), format!("{:.2}", eval_dabench(&da, *m, &llm))))
    .collect();
    row("dabench-like", "Accuracy", &cells);
    println!("  paper: DataLab 75.10 / AutoGen 71.48 / AgentPoirot 75.88");

    let ib = insightbench_like(SEED, 30);
    let judge = SimLlm::gpt4();
    let mut llama_cells = Vec::new();
    let mut rouge_cells = Vec::new();
    for m in [
        InsightMethod::DataLab,
        InsightMethod::AutoGen,
        InsightMethod::AgentPoirot,
    ] {
        let s = eval_insightbench(&ib, m, &llm, &judge);
        llama_cells.push((m.name(), format!("{:.2}", s.llm_eval)));
        rouge_cells.push((m.name(), format!("{:.2}", s.rouge1)));
    }
    row("insightbench-like", "LLM-Eval", &llama_cells);
    println!("  paper LLaMA-3-Eval: DataLab 0.37 / AutoGen 0.31 / AgentPoirot 0.35");
    row("insightbench-like", "ROUGE-1", &rouge_cells);
    println!("  paper: DataLab 0.33 / AutoGen 0.28 / AgentPoirot 0.35");

    // ---- NL2VIS -------------------------------------------------------------
    let nv = nvbench_like(SEED, N);
    let cells: Vec<(&str, String)> = [VisMethod::DataLab, VisMethod::Lida, VisMethod::Chat2Vis]
        .iter()
        .map(|m| (m.name(), format!("{:.2}", eval_vis(&nv, *m, &llm).ex)))
        .collect();
    row("nvbench-like", "Execution Accuracy", &cells);
    println!("  paper: DataLab 53.90 / LIDA 54.71 / Chat2Vis 53.83");

    let ve = viseval_like(SEED, N);
    let mut pass_cells = Vec::new();
    let mut read_cells = Vec::new();
    for m in [VisMethod::DataLab, VisMethod::Lida, VisMethod::Chat2Vis] {
        let s = eval_vis(&ve, m, &llm);
        pass_cells.push((m.name(), format!("{:.2}", s.pass_rate)));
        read_cells.push((m.name(), format!("{:.2}", s.readability)));
    }
    row("viseval-like", "Pass Rate", &pass_cells);
    println!("  paper: DataLab 75.99 / LIDA 74.66 / Chat2Vis 71.91");
    row("viseval-like", "Readability Score", &read_cells);
    println!("  paper: DataLab 3.73 / LIDA 3.77 / Chat2Vis 3.70");

    write_metrics_snapshot("table1_end_to_end", &telemetry);
}
