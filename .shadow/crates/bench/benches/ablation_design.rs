//! Design-choice ablations beyond the paper's tables: each isolates one
//! mechanism DESIGN.md calls out — Algorithm 2's three scoring stages,
//! Algorithm 1's self-calibration loop, the DSL validation-retry loop,
//! and the data-profiling fallback.

use datalab_bench::header;
use datalab_knowledge::{GenerationConfig, IncorporateConfig, KnowledgeSetting, RetrievalConfig};
use datalab_llm::{ModelProfile, SimLlm};
use datalab_workloads::ablations::{eval_nl2dsl_with, eval_schema_linking_with};
use datalab_workloads::enterprise::{downstream_tasks, enterprise_corpus};
use datalab_workloads::metrics::{mean, ses};
use datalab_workloads::nl2sql::{bird_like, eval_sql, SqlMethod};

fn main() {
    let llm = SimLlm::gpt4();
    header(
        "DESIGN-CHOICE ABLATIONS",
        "not a paper exhibit — isolates the mechanisms DESIGN.md documents",
    );

    // ---- A. Algorithm 2 scoring stages (Schema Linking Recall@5) --------
    let corpus = enterprise_corpus(31, 10);
    let gk = datalab_workloads::enterprise::generate_corpus_knowledge(&corpus, &llm);
    let (linking, dsl) = downstream_tasks(&corpus, 31, 120, 120);
    println!("\nA. retrieval scoring stages (Schema Linking Recall@5 %, full knowledge)");
    for (label, w) in [
        ("lexical only", (1.0, 0.0, 0.0)),
        ("semantic only", (0.0, 1.0, 0.0)),
        ("lex + sem", (0.5, 0.5, 0.0)),
        ("3-stage (paper)", (0.35, 0.30, 0.35)),
    ] {
        let cfg = RetrievalConfig {
            w_lex: w.0,
            w_sem: w.1,
            w_llm: w.2,
            ..Default::default()
        };
        let r =
            eval_schema_linking_with(&corpus, &gk, &linking, KnowledgeSetting::Full, &llm, &cfg);
        println!("  {label:<18} {r:.2}");
    }

    // ---- B. self-calibration loop (knowledge SES) -------------------------
    // The loop exists to catch weak-model slips; evaluate with LLaMA.
    let weak = SimLlm::new(ModelProfile::llama31());
    println!("\nB. Algorithm 1 self-calibration (column SES, LLaMA-3.1 extractor)");
    for (label, attempts) in [("1 attempt (no loop)", 1usize), ("3 attempts (paper)", 3)] {
        let mut per_table = std::collections::BTreeMap::new();
        let cfg = GenerationConfig {
            max_attempts: attempts,
            ..Default::default()
        };
        let mut scores = Vec::new();
        for t in &corpus.tables {
            let schema_line = corpus.table_schema_section(&t.spec.name);
            let (tk, _) = datalab_knowledge::generate_table_knowledge(
                &weak,
                &t.spec.name,
                &schema_line,
                &t.scripts,
                &t.lineage,
                &per_table,
                &cfg,
            );
            for (col, gold) in &t.gold_column_descriptions {
                if let Some(ck) = tk.column(col) {
                    scores.push(ses(&format!("{} {}", ck.description, ck.usage), gold));
                }
            }
            per_table.insert(t.spec.name.to_lowercase(), tk);
        }
        println!("  {label:<22} column SES mean = {:.3}", mean(&scores));
    }

    // ---- C. DSL validation retries (NL2DSL accuracy) ----------------------
    // Validation catches malformed specs, which weak models emit more of.
    println!("\nC. DSL validation-retry loop (NL2DSL accuracy %, LLaMA-3.1)");
    for (label, retries) in [("no retry", 0usize), ("1 retry (paper-style)", 1)] {
        let cfg = IncorporateConfig {
            dsl_retries: retries,
            ..Default::default()
        };
        let acc = eval_nl2dsl_with(&corpus, &gk, &dsl, &weak, &cfg);
        println!("  {label:<22} {acc:.2}");
    }

    // ---- D. data-profiling fallback (BIRD-like EX) --------------------------
    println!("\nD. data-profiling fallback (bird-like Execution Accuracy %)");
    let suite = bird_like(2026, 120);
    for method in [SqlMethod::DataLab, SqlMethod::DataLabNoProfiling] {
        let acc = eval_sql(&suite, method, &llm);
        println!("  {:<22} {acc:.2}", method.name());
    }
}
