//! Table II — ablation on Domain Knowledge Incorporation: Schema Linking
//! Recall@5 and NL2DSL Accuracy under S1 (no knowledge) / S2 (partial) /
//! S3 (all knowledge).

use datalab_bench::header;
use datalab_knowledge::KnowledgeSetting;
use datalab_llm::SimLlm;
use datalab_workloads::ablations::{eval_nl2dsl, eval_schema_linking};
use datalab_workloads::enterprise::{
    downstream_tasks, enterprise_corpus, generate_corpus_knowledge,
};

fn main() {
    header(
        "TABLE II — DOMAIN KNOWLEDGE INCORPORATION ABLATION",
        "paper: Schema Linking Recall@5 41.02 / 71.79 / 79.49; NL2DSL Accuracy 32.52 / 61.66 / 91.10",
    );
    let corpus = enterprise_corpus(31, 10);
    let llm = SimLlm::gpt4();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    // Paper sizes: 439 schema-linking pairs, 326 NL2DSL pairs.
    let (linking, dsl) = downstream_tasks(&corpus, 31, 439, 326);
    println!(
        "{:<32} {:>8} {:>8} {:>8}",
        "Task / Metric", "S1", "S2", "S3"
    );
    let settings = [
        KnowledgeSetting::None,
        KnowledgeSetting::Partial,
        KnowledgeSetting::Full,
    ];
    let l: Vec<String> = settings
        .iter()
        .map(|s| {
            format!(
                "{:.2}",
                eval_schema_linking(&corpus, &gk, &linking, *s, &llm)
            )
        })
        .collect();
    println!(
        "{:<32} {:>8} {:>8} {:>8}",
        "Schema Linking / Recall@5 (%)", l[0], l[1], l[2]
    );
    let d: Vec<String> = settings
        .iter()
        .map(|s| format!("{:.2}", eval_nl2dsl(&corpus, &gk, &dsl, *s, &llm)))
        .collect();
    println!(
        "{:<32} {:>8} {:>8} {:>8}",
        "NL2DSL / Accuracy (%)", d[0], d[1], d[2]
    );
    println!("paper:                           41.02    71.79    79.49   (linking)");
    println!("paper:                           32.52    61.66    91.10   (nl2dsl)");
}
