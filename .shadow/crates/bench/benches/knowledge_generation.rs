//! §VII-C1 — knowledge-generation quality and throughput: SES between
//! generated and expert descriptions, plus deployment-style statistics.

use datalab_bench::header;
use datalab_llm::SimLlm;
use datalab_workloads::enterprise::{enterprise_corpus, generate_corpus_knowledge};
use datalab_workloads::metrics::{mean, ses, share_at_least};
use std::time::Instant;

fn main() {
    header(
        "KNOWLEDGE GENERATION QUALITY (§VII-C1)",
        "paper: SES 0.712 tables (60% ≥ 0.7) / 0.677 columns (53% ≥ 0.7); 45.2 s/table at Tencent scale",
    );
    let corpus = enterprise_corpus(41, 10);
    let llm = SimLlm::gpt4();
    let started = Instant::now();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    let elapsed = started.elapsed();

    let mut table_ses = Vec::new();
    let mut column_ses = Vec::new();
    let mut columns_generated = 0usize;
    for t in &corpus.tables {
        let tk = &gk.per_table[&t.spec.name.to_lowercase()];
        table_ses.push(ses(
            &format!("{} {}", tk.description, tk.usage),
            &t.gold_table_description,
        ));
        for (col, gold) in &t.gold_column_descriptions {
            if let Some(ck) = tk.column(col) {
                columns_generated += 1;
                column_ses.push(ses(&format!("{} {}", ck.description, ck.usage), gold));
            }
        }
    }
    let n_tables = corpus.tables.len();
    let n_columns: usize = corpus
        .tables
        .iter()
        .map(|t| {
            corpus
                .db
                .get(&t.spec.name)
                .map(|df| df.n_cols())
                .unwrap_or(0)
        })
        .sum();
    let attempts: usize = gk.reports.iter().map(|r| r.map_attempts).sum();
    let scripts: usize = gk.reports.iter().map(|r| r.scripts_used).sum();

    println!("tables processed            : {n_tables}");
    println!("columns in corpus           : {n_columns}");
    println!("scripts used (after dedup)  : {scripts}");
    println!("map-phase LLM attempts      : {attempts}");
    println!("graph nodes                 : {}", gk.graph.len());
    println!(
        "wall time                   : {:?} ({:.1} ms/table)",
        elapsed,
        elapsed.as_secs_f64() * 1000.0 / n_tables as f64
    );
    println!();
    println!(
        "Table SES  mean={:.3}  share>=0.7={:.0}%   (paper: 0.712, 60%)",
        mean(&table_ses),
        share_at_least(&table_ses, 0.7)
    );
    println!("Column SES mean={:.3}  share>=0.7={:.0}%   (paper: 0.677, 53%)   columns scored: {columns_generated}", mean(&column_ses), share_at_least(&column_ses, 0.7));
}
