//! Table IV — ablation on Cell-based Context Management: Accuracy and
//! Token Cost per Query with (S2) and without (S1) the dependency DAG.

use datalab_bench::header;
use datalab_workloads::notebooks::{context_tasks, eval_context, notebook_corpus};

fn main() {
    header(
        "TABLE IV — CELL-BASED CONTEXT MANAGEMENT ABLATION",
        "paper: Accuracy 86.67 -> 82.00 (-4.67 pts); Token Cost per Query 10.69K -> 4.10K (-61.65%)",
    );
    // Paper setting: 50 notebooks (2-49 cells), 3 queries each = 150.
    let corpus = notebook_corpus(55, 50, 49);
    let tasks = context_tasks(&corpus, 55);
    let s1 = eval_context(&corpus, &tasks, false);
    let s2 = eval_context(&corpus, &tasks, true);
    println!("{:<28} {:>10} {:>10}", "Metric", "S1 (all)", "S2 (DAG)");
    println!(
        "{:<28} {:>10.2} {:>10.2}",
        "Accuracy (%)", s1.accuracy, s2.accuracy
    );
    println!(
        "{:<28} {:>10.2} {:>10.2}",
        "Token Cost per Query (K)", s1.token_cost_k, s2.token_cost_k
    );
    let reduction = 100.0 * (1.0 - s2.token_cost_k / s1.token_cost_k);
    println!("token reduction: {reduction:.2}%   (paper: 61.65%)");
    println!("tasks evaluated: {}", tasks.len());
}
