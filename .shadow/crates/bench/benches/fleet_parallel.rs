//! Criterion benchmarks for the sharded fleet executor and the embedding
//! hot path: `run_fleet` at 1/2/4 workers (same seed, same tasks — only
//! the thread count varies) and `HashEmbedder::embed` against the former
//! per-feature `format!` formulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalab_llm::util::{fnv1a, stem, words};
use datalab_llm::{HashEmbedder, EMBED_DIM};
use datalab_workloads::{run_fleet, FleetConfig};
use std::hint::black_box;

fn bench_fleet_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_parallel");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let config = FleetConfig {
            seed: 7,
            tasks_per_workload: 2,
            workers,
            ..FleetConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("run_fleet", workers),
            &config,
            |b, config| b.iter(|| black_box(run_fleet(config))),
        );
    }
    group.finish();
}

/// The pre-optimisation embedding: per-feature `format!` strings hashed
/// whole. Bit-identical to `HashEmbedder::embed` (asserted in the llm
/// crate's tests); benched here as the allocation-heavy baseline.
fn embed_format_baseline(text: &str) -> Vec<f32> {
    fn bump(v: &mut [f32], feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let idx = (h % EMBED_DIM as u64) as usize;
        let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
        v[idx] += sign * weight;
    }
    let mut v = vec![0.0f32; EMBED_DIM];
    for w in words(text) {
        let s = stem(&w);
        bump(&mut v, &format!("w:{s}"), 1.0);
        let chars: Vec<char> = s.chars().collect();
        if chars.len() >= 3 {
            for win in chars.windows(3) {
                let tri: String = win.iter().collect();
                bump(&mut v, &format!("t:{tri}"), 0.35);
            }
        }
    }
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

fn bench_embed(c: &mut Criterion) {
    let text = "monthly shouldincome_after tax revenue rollup by product category and sales region";
    let embedder = HashEmbedder::new();
    assert_eq!(
        embedder.embed(text),
        embed_format_baseline(text),
        "baseline diverged from the production path"
    );
    let mut group = c.benchmark_group("hash_embed");
    group.bench_function("allocation_free", |b| {
        b.iter(|| black_box(embedder.embed(black_box(text))))
    });
    group.bench_function("format_baseline", |b| {
        b.iter(|| black_box(embed_format_baseline(black_box(text))))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_workers, bench_embed);
criterion_main!(benches);
