//! Fig. 7 — sensitivity of DataLab to the underlying LLM (GPT-4,
//! Qwen-2.5, LLaMA-3.1) on Spider-, DS-1000-, DABench-, and VisEval-like
//! suites, plus the vanilla-LLaMA DS-1000 comparison from §VII-B.

use datalab_bench::{header, row};
use datalab_llm::{ModelProfile, SimLlm};
use datalab_workloads::insight::{dabench_like, eval_dabench, InsightMethod};
use datalab_workloads::nl2code::{ds1000_like, eval_code, CodeMethod};
use datalab_workloads::nl2sql::{eval_sql, spider_like, SqlMethod};
use datalab_workloads::nl2vis::{eval_vis, viseval_like, VisMethod};

const SEEDS: [u64; 2] = [77, 1077];
const N: usize = 150;

fn main() {
    header(
        "FIGURE 7 — SENSITIVITY TO THE UNDERLYING LLM",
        "paper Fig. 7: GPT-4 >= Qwen-2.5 > LLaMA-3.1 on Spider/DS-1000/DABench; \
         LLaMA drops hardest on DS-1000; all three close on VisEval",
    );
    let models = [
        ModelProfile::gpt4(),
        ModelProfile::qwen25(),
        ModelProfile::llama31(),
    ];

    let display = |n: &str| match n {
        "gpt-4" => "GPT-4",
        "qwen-2.5" => "Qwen-2.5",
        _ => "LLaMA-3.1",
    };
    let avg = |f: &dyn Fn(u64, &SimLlm) -> f64, llm: &SimLlm| -> f64 {
        SEEDS.iter().map(|s| f(*s, llm)).sum::<f64>() / SEEDS.len() as f64
    };

    let cells: Vec<(&str, String)> = models
        .iter()
        .map(|m| {
            let llm = SimLlm::new(m.clone());
            let score = avg(
                &|s, llm: &SimLlm| eval_sql(&spider_like(s, N), SqlMethod::DataLab, llm),
                &llm,
            );
            (display(&m.name), format!("{score:.2}"))
        })
        .collect();
    row("spider-like", "Execution Accuracy", &cells);
    println!("  paper: ~80.7 / ~78 / ~74 (shape: monotone decrease)");

    let mut cells: Vec<(&str, String)> = Vec::new();
    for m in &models {
        let llm = SimLlm::new(m.clone());
        let score = avg(
            &|s, llm: &SimLlm| eval_code(&ds1000_like(s, N), CodeMethod::DataLab, llm),
            &llm,
        );
        cells.push((display(&m.name), format!("{score:.2}")));
    }
    // Vanilla LLaMA: one-shot code, no DataLab scaffolding (CoML-style).
    let llama = SimLlm::new(ModelProfile::llama31());
    let vanilla = avg(
        &|s, llm: &SimLlm| eval_code(&ds1000_like(s, N), CodeMethod::CoML, llm),
        &llama,
    );
    cells.push(("vanilla-LLaMA-3.1", format!("{vanilla:.2}")));
    row("ds1000-like", "Pass Rate", &cells);
    println!("  paper: 53.8 / ~48 / 42.5; vanilla LLaMA-3.1 36.9 < DataLab+LLaMA 42.5");

    let cells: Vec<(&str, String)> = models
        .iter()
        .map(|m| {
            let llm = SimLlm::new(m.clone());
            let score = avg(
                &|s, llm: &SimLlm| eval_dabench(&dabench_like(s, 100), InsightMethod::DataLab, llm),
                &llm,
            );
            (display(&m.name), format!("{score:.2}"))
        })
        .collect();
    row("dabench-like", "Accuracy", &cells);
    println!("  paper: 75.1 / ~72 / ~66 (monotone decrease)");

    let cells: Vec<(&str, String)> = models
        .iter()
        .map(|m| {
            let llm = SimLlm::new(m.clone());
            let score = avg(
                &|s, llm: &SimLlm| eval_vis(&viseval_like(s, N), VisMethod::DataLab, llm).pass_rate,
                &llm,
            );
            (display(&m.name), format!("{score:.2}"))
        })
        .collect();
    row("viseval-like", "Pass Rate", &cells);
    println!("  paper: all three similar (~74-77), LLaMA-3.1 surprisingly best");
}
