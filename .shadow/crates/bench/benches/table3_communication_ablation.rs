//! Table III — ablation on Inter-Agent Communication: Success Rate and
//! Accuracy on 100 complex multi-agent questions under S1 (no FSM) / S2
//! (no information format) / S3 (both).

use datalab_agents::CommunicationConfig;
use datalab_bench::header;
use datalab_llm::SimLlm;
use datalab_workloads::ablations::{eval_multiagent, multiagent_tasks};
use datalab_workloads::enterprise::{enterprise_corpus, generate_corpus_knowledge};

fn main() {
    header(
        "TABLE III — INTER-AGENT COMMUNICATION ABLATION",
        "paper: Success Rate 73 / 85 / 92; Accuracy 56 / 79 / 84 (S1 no FSM, S2 no format, S3 both)",
    );
    // Paper setting: 10 tables, 10 questions each = 100 samples.
    let corpus = enterprise_corpus(33, 10);
    let llm = SimLlm::gpt4();
    let gk = generate_corpus_knowledge(&corpus, &llm);
    let tasks = multiagent_tasks(&corpus, 33, 10);
    let configs = [
        (
            "S1 (w/o FSM)",
            CommunicationConfig {
                use_fsm: false,
                ..Default::default()
            },
        ),
        (
            "S2 (w/o info format)",
            CommunicationConfig {
                structured: false,
                ..Default::default()
            },
        ),
        ("S3 (w/ both)", CommunicationConfig::default()),
    ];
    println!(
        "{:<24} {:>14} {:>12}",
        "Setting", "Success (%)", "Accuracy (%)"
    );
    for (name, cfg) in configs {
        let s = eval_multiagent(&corpus, &gk, &tasks, &cfg, &llm);
        println!("{name:<24} {:>14.2} {:>12.2}", s.success_rate, s.accuracy);
    }
    println!("paper:                    S1 73/56   S2 85/79   S3 92/84");
}
