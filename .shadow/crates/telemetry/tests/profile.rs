//! Integration tests for the continuous-profiling layer, run with the
//! counting global allocator installed — the configuration the server
//! and bench binaries ship with. The unit tests inside the crate run
//! *without* the allocator (exercising the zero fallbacks); this binary
//! pins the installed behaviour: exact thread-local attribution under
//! concurrency, span-level alloc deltas from a real tracer, and the
//! collapsed-stack export's structural invariants.

use datalab_telemetry::{
    allocator_installed, folded_stacks, folded_total, global_alloc_stats, thread_alloc_stats,
    CountingAlloc, ProfileWeight, SpanNode, Telemetry,
};
use proptest::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocates the given buffer sizes on a fresh thread inside a tight
/// measurement window and returns `((allocs, bytes), (frees, freed))`
/// deltas for exactly that window. The holding `Vec` is sized before the
/// window opens and only cleared (elements dropped, backbone kept)
/// before it closes, so the expected counts are exact: one allocation
/// and one free of exactly `size` bytes per entry.
fn measured_thread(sizes: Vec<usize>) -> ((u64, u64), (u64, u64)) {
    std::thread::spawn(move || {
        let mut held: Vec<Vec<u8>> = Vec::with_capacity(sizes.len());
        let before = thread_alloc_stats();
        for &size in &sizes {
            held.push(vec![0u8; size]);
        }
        let mid = thread_alloc_stats();
        held.clear();
        let after = thread_alloc_stats();
        (
            (mid.allocs - before.allocs, mid.bytes - before.bytes),
            (after.frees - mid.frees, after.freed_bytes - mid.freed_bytes),
        )
    })
    .join()
    .expect("measurement thread")
}

#[test]
fn allocator_reports_installed_and_counts_globally() {
    assert!(allocator_installed());
    let before = global_alloc_stats();
    let buf = vec![7u8; 100_000];
    let after = global_alloc_stats();
    drop(buf);
    assert!(after.allocs > before.allocs);
    assert!(after.bytes >= before.bytes + 100_000);
}

#[test]
fn concurrent_threads_attribute_their_own_allocations_exactly() {
    let global_before = global_alloc_stats();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let sizes: Vec<usize> = (0..50 + i * 10).map(|j| 64 + j * (i + 1)).collect();
                let expected_bytes: u64 = sizes.iter().map(|s| *s as u64).sum();
                let expected_count = sizes.len() as u64;
                (measured_thread(sizes), expected_count, expected_bytes)
            })
        })
        .collect();
    let mut total_allocs = 0;
    let mut total_bytes = 0;
    for handle in handles {
        let (((allocs, bytes), (frees, freed)), expected_count, expected_bytes) =
            handle.join().expect("worker");
        // Exact, not approximate: nothing else allocates inside the
        // window, and other threads' traffic never leaks in.
        assert_eq!(allocs, expected_count);
        assert_eq!(bytes, expected_bytes);
        assert_eq!(frees, expected_count);
        assert_eq!(freed, expected_bytes);
        total_allocs += expected_count;
        total_bytes += expected_bytes;
    }
    let global_after = global_alloc_stats();
    assert!(global_after.allocs >= global_before.allocs + total_allocs);
    assert!(global_after.bytes >= global_before.bytes + total_bytes);
    assert!(global_after.frees >= global_before.frees + total_allocs);
}

#[test]
fn spans_carry_alloc_deltas_and_alloc_weighted_profiles_are_nonempty() {
    let t = Telemetry::new();
    {
        let _root = t.span("query");
        let _work = vec![0u8; 1 << 16];
    }
    let forest = t.drain_trace();
    assert_eq!(forest.len(), 1);
    let root = &forest[0];
    assert!(root.allocs >= 1, "{root:?}");
    assert!(root.alloc_bytes >= 1 << 16, "{root:?}");
    let folded = folded_stacks(&forest, ProfileWeight::AllocBytes);
    assert!(folded.starts_with("query "), "{folded}");
    assert_eq!(folded_total(&folded), root.alloc_bytes);
    let by_count = folded_stacks(&forest, ProfileWeight::AllocCount);
    assert_eq!(folded_total(&by_count), root.allocs);
}

#[test]
fn stage_scopes_observe_alloc_histograms_when_installed() {
    let t = Telemetry::new();
    {
        let _stage = t.stage("execute");
        let _work = vec![0u8; 4096];
    }
    let bytes = t
        .metrics()
        .histogram("alloc.stage_bytes.execute")
        .expect("bytes histogram");
    assert_eq!(bytes.count, 1);
    assert!(bytes.sum >= 4096, "{bytes:?}");
    let count = t
        .metrics()
        .histogram("alloc.stage_allocs.execute")
        .expect("count histogram");
    assert_eq!(count.count, 1);
    assert!(count.sum >= 1);
}

#[test]
fn snapshot_exports_live_alloc_counters() {
    let t = Telemetry::new();
    let keep = vec![1u8; 8192];
    let json = t.snapshot_json();
    drop(keep);
    // With the allocator installed the counters are real, not zero.
    let field = |name: &str| {
        let key = format!("\"{name}\":");
        let at = json
            .find(&key)
            .unwrap_or_else(|| panic!("{name} missing: {json}"));
        json[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse::<u64>()
            .expect("numeric counter")
    };
    assert!(field("alloc.allocs") > 0);
    assert!(field("alloc.bytes") > 0);
}

proptest! {
    /// Thread-local deltas count a controlled allocation pattern
    /// exactly, for any pattern: `n` buffers of arbitrary sizes yield
    /// precisely `n` allocations of precisely the summed bytes, and
    /// dropping them yields the mirror-image frees.
    #[test]
    fn thread_deltas_are_exact_for_any_allocation_pattern(
        sizes in proptest::collection::vec(1usize..16_384, 1..64),
    ) {
        let expected_count = sizes.len() as u64;
        let expected_bytes: u64 = sizes.iter().map(|s| *s as u64).sum();
        let ((allocs, bytes), (frees, freed)) = measured_thread(sizes);
        prop_assert_eq!(allocs, expected_count);
        prop_assert_eq!(bytes, expected_bytes);
        prop_assert_eq!(frees, expected_count);
        prop_assert_eq!(freed, expected_bytes);
    }

    /// Folded output over arbitrary span trees is deterministic and
    /// structurally well-formed — every line is `stack weight` with a
    /// positive weight and non-empty, separator-free frames (names
    /// containing `;`, spaces, or nothing at all are sanitised) — and
    /// wall weights are conserved: the folded total equals the summed
    /// root time whenever children nest inside their parents.
    #[test]
    fn folded_output_is_deterministic_well_formed_and_weight_conserving(
        roots in proptest::collection::vec(
            (
                "[a-zA-Z; _]{0,10}",
                0u64..1_000,
                proptest::collection::vec(("[a-zA-Z; _]{0,10}", 1u64..1_000), 0..4),
            ),
            1..6,
        ),
    ) {
        let spans: Vec<SpanNode> = roots
            .iter()
            .map(|(name, self_us, kids)| {
                let children: Vec<SpanNode> = kids
                    .iter()
                    .map(|(kid_name, kid_dur)| SpanNode {
                        name: kid_name.clone(),
                        start_us: 0,
                        dur_us: *kid_dur,
                        cpu_us: 0,
                        allocs: 0,
                        alloc_bytes: 0,
                        attrs: vec![],
                        children: vec![],
                    })
                    .collect();
                // Parent time = own work + children, so nesting holds
                // and the conservation property is exact.
                let dur_us = self_us + children.iter().map(|c| c.dur_us).sum::<u64>();
                SpanNode {
                    name: name.clone(),
                    start_us: 0,
                    dur_us,
                    cpu_us: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                    attrs: vec![],
                    children,
                }
            })
            .collect();
        let folded = folded_stacks(&spans, ProfileWeight::Wall);
        prop_assert_eq!(&folded, &folded_stacks(&spans, ProfileWeight::Wall));
        for line in folded.lines() {
            let parts = line.rsplit_once(' ');
            prop_assert!(parts.is_some(), "malformed line `{}`", line);
            let (stack, weight) = parts.expect("checked above");
            let weight: u64 = weight.parse().expect("numeric weight");
            prop_assert!(weight > 0, "zero-weight line `{}`", line);
            for frame in stack.split(';') {
                prop_assert!(!frame.is_empty(), "empty frame in `{}`", line);
                prop_assert!(
                    !frame.contains(char::is_whitespace),
                    "unsanitised frame in `{}`",
                    line
                );
            }
        }
        let root_total: u64 = spans.iter().map(|s| s.dur_us).sum();
        prop_assert_eq!(folded_total(&folded), root_total);
    }
}
