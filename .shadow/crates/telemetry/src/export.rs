//! Exporters: JSON metric snapshots and Chrome `trace_event` files.
//!
//! The JSON here is hand-rolled (this crate is dependency-free); shapes
//! are small and fixed, and every string passes through [`json_escape`].

use crate::metrics::MetricsSnapshot;
use crate::span::SpanNode;
use crate::summary::AttributedUsage;

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises a span forest as a Chrome `trace_event` JSON object —
/// `{"traceEvents": [...]}` with one complete (`"ph": "X"`) event per
/// span — loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(spans: &[SpanNode]) -> String {
    let mut events = Vec::new();
    for root in spans {
        push_chrome_events(root, &mut events);
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

fn push_chrome_events(node: &SpanNode, events: &mut Vec<String>) {
    let args: Vec<String> = node
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    events.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"datalab\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{{}}}}}",
        json_escape(&node.name),
        node.start_us,
        node.dur_us,
        args.join(",")
    ));
    for c in &node.children {
        push_chrome_events(c, events);
    }
}

/// Serialises one span subtree as nested JSON
/// (`{"name", "start_us", "dur_us", "cpu_us", "allocs", "alloc_bytes",
/// "attrs", "children"}`).
pub fn span_json(node: &SpanNode) -> String {
    let attrs: Vec<String> = node
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    let children: Vec<String> = node.children.iter().map(span_json).collect();
    format!(
        "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"cpu_us\":{},\"allocs\":{},\"alloc_bytes\":{},\"attrs\":{{{}}},\"children\":[{}]}}",
        json_escape(&node.name),
        node.start_us,
        node.dur_us,
        node.cpu_us,
        node.allocs,
        node.alloc_bytes,
        attrs.join(","),
        children.join(",")
    )
}

/// Serialises a metrics snapshot plus token attribution as one JSON
/// object: `{"counters": {...}, "gauges": {...}, "histograms": {...},
/// "attribution": [...]}`.
pub fn metrics_json(snapshot: &MetricsSnapshot, attribution: &[AttributedUsage]) -> String {
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(n, v)| format!("\"{}\":{v}", json_escape(n)))
        .collect();
    let gauges: Vec<String> = snapshot
        .gauges
        .iter()
        .map(|(n, v)| format!("\"{}\":{v}", json_escape(n)))
        .collect();
    let histograms: Vec<String> = snapshot
        .histograms
        .iter()
        .map(|(n, h)| {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            format!(
                "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(n),
                bounds.join(","),
                counts.join(","),
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            )
        })
        .collect();
    let attribution: Vec<String> = attribution.iter().map(attribution_entry_json).collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"attribution\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        attribution.join(",")
    )
}

/// Renders a metrics snapshot as a plain-text exposition: one
/// `name value` line per counter and gauge (sections separated by `#`
/// comment lines), then one summary line per histogram. The counter and
/// gauge lines are machine-recoverable — `name` up to the last space,
/// integer value after it — so text dumps can be diffed and re-parsed.
pub fn metrics_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("# counters\n");
    for (name, value) in &snapshot.counters {
        out.push_str(&format!("{name} {value}\n"));
    }
    out.push_str("# gauges\n");
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!("{name} {value}\n"));
    }
    out.push_str("# histograms\n");
    for (name, h) in &snapshot.histograms {
        out.push_str(&format!(
            "{name} count={} sum={} max={} p50={} p90={} p99={}\n",
            h.count,
            h.sum,
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        ));
    }
    out
}

/// Maps a dotted metric name onto the Prometheus name charset:
/// everything outside `[a-zA-Z0-9_]` becomes `_`, and the whole name is
/// prefixed `datalab_` (which also guards against leading digits).
/// Distinct dotted names can collide after sanitisation (`a.b` / `a_b`);
/// the registry's naming convention never does.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("datalab_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (`# TYPE` metadata plus sample lines), so `GET /v1/metrics` is
/// scrapeable by standard tooling. Histograms emit the full cumulative
/// `_bucket{le="..."}` series (the registry's upper-inclusive bounds map
/// directly onto Prometheus `le` semantics) plus `_sum` and `_count`.
pub fn metrics_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (slot, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts.get(slot).copied().unwrap_or(0);
            out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{n}_bucket{{le=\"+Inf\"}} {count}\n{n}_sum {sum}\n{n}_count {count}\n",
            count = h.count,
            sum = h.sum
        ));
    }
    out
}

/// Serialises one flight-record event as JSON
/// (`{"seq", "at_us", "kind", "detail"}`, plus `"trace"` when the event
/// was recorded under an active request trace).
pub fn event_json(e: &crate::events::Event) -> String {
    let trace = match &e.trace {
        Some(t) => format!(",\"trace\":\"{}\"", json_escape(t)),
        None => String::new(),
    };
    format!(
        "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"detail\":\"{}\"{}}}",
        e.seq,
        e.at_us,
        e.kind.as_str(),
        json_escape(&e.detail),
        trace
    )
}

pub(crate) fn attribution_entry_json(a: &AttributedUsage) -> String {
    format!(
        "{{\"stage\":\"{}\",\"agent\":\"{}\",\"calls\":{},\"prompt_tokens\":{},\"completion_tokens\":{}}}",
        json_escape(&a.stage),
        json_escape(&a.agent),
        a.usage.calls,
        a.usage.prompt_tokens,
        a.usage.completion_tokens
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::summary::TokenUsage;

    fn node() -> SpanNode {
        SpanNode {
            name: "query".into(),
            start_us: 5,
            dur_us: 100,
            cpu_us: 60,
            allocs: 12,
            alloc_bytes: 768,
            attrs: vec![("q".into(), "say \"hi\"\n".into())],
            children: vec![SpanNode {
                name: "plan".into(),
                start_us: 10,
                dur_us: 20,
                cpu_us: 0,
                allocs: 0,
                alloc_bytes: 0,
                attrs: vec![],
                children: vec![],
            }],
        }
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let json = chrome_trace_json(&[node()]);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"name\":\"plan\""));
        // The quoted attribute survives escaping.
        assert!(json.contains("say \\\"hi\\\"\\n"));
    }

    #[test]
    fn span_json_nests_children() {
        let json = span_json(&node());
        assert!(json.contains("\"children\":[{\"name\":\"plan\""), "{json}");
        assert!(json.contains("\"cpu_us\":60"), "{json}");
        assert!(json.contains("\"allocs\":12"), "{json}");
        assert!(json.contains("\"alloc_bytes\":768"), "{json}");
    }

    #[test]
    fn prometheus_exposition_covers_all_instrument_kinds() {
        let m = MetricsRegistry::new();
        m.incr("llm.calls", 2);
        m.gauge_set("server.queue.depth", 5);
        m.histogram_with_buckets("server.latency.query_us", &[10, 100]);
        m.observe("server.latency.query_us", 7);
        m.observe("server.latency.query_us", 50);
        m.observe("server.latency.query_us", 500);
        let text = metrics_prometheus(&m.snapshot());
        assert!(
            text.contains("# TYPE datalab_llm_calls counter\ndatalab_llm_calls 2\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "# TYPE datalab_server_queue_depth gauge\ndatalab_server_queue_depth 5\n"
            ),
            "{text}"
        );
        // Cumulative buckets: le="10" holds 1, le="100" holds 2, +Inf 3.
        assert!(text.contains("# TYPE datalab_server_latency_query_us histogram"));
        assert!(text.contains("datalab_server_latency_query_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("datalab_server_latency_query_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("datalab_server_latency_query_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("datalab_server_latency_query_us_sum 557\n"));
        assert!(text.contains("datalab_server_latency_query_us_count 3\n"));
    }

    #[test]
    fn prometheus_names_are_sanitised() {
        let m = MetricsRegistry::new();
        m.gauge_set("slo.availability_burn_fast_pm.tenant-a", 3);
        let text = metrics_prometheus(&m.snapshot());
        assert!(
            text.contains("datalab_slo_availability_burn_fast_pm_tenant_a 3\n"),
            "{text}"
        );
    }

    #[test]
    fn metrics_json_includes_everything() {
        let m = MetricsRegistry::new();
        m.incr("llm.calls", 2);
        m.gauge_add("server.queue.depth", 5);
        m.histogram_with_buckets("llm.call_tokens", &[10, 100]);
        m.observe("llm.call_tokens", 42);
        let attribution = vec![AttributedUsage {
            stage: "execute".into(),
            agent: "sql_agent".into(),
            usage: TokenUsage {
                prompt_tokens: 40,
                completion_tokens: 2,
                calls: 1,
            },
        }];
        let json = metrics_json(&m.snapshot(), &attribution);
        assert!(json.contains("\"llm.calls\":2"), "{json}");
        assert!(json.contains("\"gauges\":{\"server.queue.depth\":5}"));
        assert!(json.contains("\"bounds\":[10,100]"));
        assert!(json.contains("\"counts\":[0,1,0]"));
        assert!(json.contains("\"max\":42"));
        assert!(json.contains("\"p99\":42"));
        assert!(json.contains("\"stage\":\"execute\""));
        assert!(json.contains("\"prompt_tokens\":40"));
    }

    #[test]
    fn fault_and_breaker_metrics_round_trip_through_both_exporters() {
        let m = MetricsRegistry::new();
        m.incr("llm.faults.transport", 3);
        m.incr("llm.faults.timeout", 0);
        m.incr("llm.faults.retries", 5);
        m.incr("llm.breaker.trips", 1);
        m.gauge_set("llm.breaker.state", 2);
        let snapshot = m.snapshot();

        // JSON exporter (the /v1/metrics shape) carries the new names,
        // zero-valued counters included.
        let json = metrics_json(&snapshot, &[]);
        assert!(json.contains("\"llm.faults.transport\":3"), "{json}");
        assert!(json.contains("\"llm.faults.timeout\":0"), "{json}");
        assert!(json.contains("\"llm.breaker.trips\":1"), "{json}");
        assert!(json.contains("\"llm.breaker.state\":2"), "{json}");

        // Text exporter round-trip: parse counter/gauge lines back and
        // compare against the snapshot they came from.
        let text = metrics_text(&snapshot);
        let mut counters = std::collections::BTreeMap::new();
        let mut gauges = std::collections::BTreeMap::new();
        let mut section = "";
        for line in text.lines() {
            if let Some(s) = line.strip_prefix("# ") {
                section = s;
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value line");
            match section {
                "counters" => {
                    counters.insert(name.to_string(), value.parse::<u64>().unwrap());
                }
                "gauges" => {
                    gauges.insert(name.to_string(), value.parse::<i64>().unwrap());
                }
                _ => {}
            }
        }
        for (name, value) in &snapshot.counters {
            assert_eq!(counters.get(name), Some(value), "{name}");
        }
        for (name, value) in &snapshot.gauges {
            assert_eq!(gauges.get(name), Some(value), "{name}");
        }
        assert_eq!(counters.len(), snapshot.counters.len());
        assert_eq!(gauges.len(), snapshot.gauges.len());
    }

    #[test]
    fn event_json_escapes_the_detail() {
        let mut e = crate::events::Event {
            seq: 7,
            at_us: 1500,
            kind: crate::events::EventKind::SandboxFailure,
            detail: "parse error: \"bad\" line".into(),
            trace: None,
        };
        let json = event_json(&e);
        assert!(json.starts_with("{\"seq\":7,\"at_us\":1500"), "{json}");
        assert!(json.contains("\"kind\":\"sandbox_failure\""));
        assert!(json.contains("\\\"bad\\\""));
        assert!(!json.contains("\"trace\""));
        e.trace = Some("req-9".into());
        let json = event_json(&e);
        assert!(json.contains("\"trace\":\"req-9\""), "{json}");
    }
}
