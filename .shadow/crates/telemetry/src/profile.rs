//! Continuous profiling: allocation accounting, per-thread CPU time, and
//! collapsed-stack (flamegraph) export for span trees.
//!
//! Three pieces, all pure-std:
//!
//! 1. **[`CountingAlloc`]** — a `#[global_allocator]` wrapper over
//!    [`std::alloc::System`] that counts allocations and bytes both
//!    process-wide and per-thread. The per-thread counters give spans
//!    *scope attribution*: the delta between a span's open and close on
//!    its owning thread is the allocation cost of that span.
//! 2. **[`thread_cpu_time_us`]** — per-thread CPU time via
//!    `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` through a direct FFI
//!    declaration (no libc crate; the symbol lives in every libc this
//!    workspace targets). Falls back to `None` on unsupported targets,
//!    leaving spans wall-clock-only.
//! 3. **[`folded_stacks`]** — aggregates span forests into the collapsed
//!    stack format (`frame;frame;frame weight`) flamegraph tooling eats
//!    (inferno, flamegraph.pl, speedscope), weighted by wall time, CPU
//!    time, allocated bytes, or allocation count.
//!
//! The allocator wrapper is opt-in per binary: installing it in the
//! server and bench binaries (and profiling tests) keeps unit-test
//! binaries and downstream consumers on the system allocator unless they
//! ask. When it is not installed every alloc counter reads zero and the
//! alloc-weighted profile is empty — the wall/CPU profiles still work.

use crate::metrics::MetricsRegistry;
use crate::span::SpanNode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Histogram bounds for per-stage allocated bytes: 1 KiB .. 256 MiB.
pub const ALLOC_BYTES_BUCKETS: &[u64] = &[
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
];

/// Histogram bounds for per-stage allocation counts: 16 .. 4M.
pub const ALLOC_COUNT_BUCKETS: &[u64] = &[
    16,
    64,
    256,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
];

// Process-wide allocation totals, updated on every alloc/free while the
// counting allocator is installed.
static G_ALLOCS: AtomicU64 = AtomicU64::new(0);
static G_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_FREES: AtomicU64 = AtomicU64::new(0);
static G_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Flipped on the first counted allocation, so consumers can tell "no
/// allocations yet" apart from "the wrapper is not installed".
static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    // Const-initialised Cells: no lazy init, so reading or bumping them
    // never allocates — mandatory inside the allocator itself.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static TL_FREES: Cell<u64> = const { Cell::new(0) };
    static TL_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_alloc(bytes: u64) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    G_ALLOCS.fetch_add(1, Ordering::Relaxed);
    G_ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    // try_with: the thread-local may already be torn down during thread
    // exit while the runtime still allocates; fall back to the globals
    // only (counts stay exact process-wide, the dying thread's few final
    // allocations just go unattributed).
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
}

#[inline]
fn count_free(bytes: u64) {
    G_FREES.fetch_add(1, Ordering::Relaxed);
    G_FREED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let _ = TL_FREES.try_with(|c| c.set(c.get() + 1));
    let _ = TL_FREED_BYTES.try_with(|c| c.set(c.get() + bytes));
}

/// A counting wrapper around the system allocator. Install per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: datalab_telemetry::CountingAlloc = datalab_telemetry::CountingAlloc::new();
/// ```
///
/// Overhead is two relaxed atomic adds plus two thread-local bumps per
/// allocation — no locks, no allocation, no syscalls.
#[derive(Debug)]
pub struct CountingAlloc {
    inner: System,
}

impl CountingAlloc {
    /// The wrapper (const, so it can back a `static`).
    pub const fn new() -> Self {
        CountingAlloc { inner: System }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System` unchanged; the counters
// touched on the side never allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc(layout);
        if !p.is_null() {
            count_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.inner.alloc_zeroed(layout);
        if !p.is_null() {
            count_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        count_free(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.inner.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Counted as a fresh allocation plus a free of the old block,
            // so byte totals track the actual footprint change.
            count_alloc(new_size as u64);
            count_free(layout.size() as u64);
        }
        p
    }
}

/// Whether a [`CountingAlloc`] has counted at least one allocation in
/// this process — i.e. the wrapper is installed and live.
pub fn allocator_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// A point-in-time copy of allocation counters (process-wide or
/// per-thread, depending on which reader produced it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations counted.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Frees counted.
    pub frees: u64,
    /// Bytes released by those frees.
    pub freed_bytes: u64,
}

impl AllocStats {
    /// Bytes currently live (allocated minus freed, floored at zero —
    /// per-thread stats can free memory another thread allocated).
    pub fn live_bytes(&self) -> u64 {
        self.bytes.saturating_sub(self.freed_bytes)
    }

    /// Counter growth since an earlier snapshot.
    pub fn delta_since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            frees: self.frees.saturating_sub(earlier.frees),
            freed_bytes: self.freed_bytes.saturating_sub(earlier.freed_bytes),
        }
    }
}

/// Process-wide allocation totals (all zero when the counting allocator
/// is not installed).
pub fn global_alloc_stats() -> AllocStats {
    AllocStats {
        allocs: G_ALLOCS.load(Ordering::Relaxed),
        bytes: G_ALLOC_BYTES.load(Ordering::Relaxed),
        frees: G_FREES.load(Ordering::Relaxed),
        freed_bytes: G_FREED_BYTES.load(Ordering::Relaxed),
    }
}

/// The calling thread's allocation totals (all zero when the counting
/// allocator is not installed).
pub fn thread_alloc_stats() -> AllocStats {
    AllocStats {
        allocs: TL_ALLOCS.try_with(Cell::get).unwrap_or(0),
        bytes: TL_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        frees: TL_FREES.try_with(Cell::get).unwrap_or(0),
        freed_bytes: TL_FREED_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

/// Publishes the process-wide allocation totals into `metrics` as
/// `alloc.*` instruments: monotone totals as counters, live bytes as a
/// gauge. Call at scrape time — the counters live in the allocator, not
/// the registry, so this is a copy, not an accumulation.
pub fn publish_alloc_metrics(metrics: &MetricsRegistry) {
    let s = global_alloc_stats();
    metrics.counter_set("alloc.allocs", s.allocs);
    metrics.counter_set("alloc.bytes", s.bytes);
    metrics.counter_set("alloc.frees", s.frees);
    metrics.counter_set("alloc.freed_bytes", s.freed_bytes);
    metrics.gauge_set(
        "alloc.live_bytes",
        s.live_bytes().min(i64::MAX as u64) as i64,
    );
}

#[cfg(any(target_os = "linux", target_os = "android", target_os = "macos"))]
mod cpu_clock {
    //! `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` without the libc crate:
    //! the symbol is in every libc this workspace targets, and the
    //! struct layout for 64-bit targets is two machine words.

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    #[cfg(target_os = "macos")]
    const CLOCK_THREAD_CPUTIME_ID: i32 = 16;

    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }

    pub fn thread_cpu_time_us() -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable Timespec matching the ABI
        // struct; the clock id is a compile-time constant for this OS.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return None;
        }
        Some((ts.tv_sec as u64).saturating_mul(1_000_000) + (ts.tv_nsec as u64) / 1_000)
    }
}

#[cfg(not(any(target_os = "linux", target_os = "android", target_os = "macos")))]
mod cpu_clock {
    pub fn thread_cpu_time_us() -> Option<u64> {
        None
    }
}

/// CPU time consumed by the calling thread, in microseconds — `None` on
/// targets without a thread CPU clock (spans then stay wall-clock-only).
pub fn thread_cpu_time_us() -> Option<u64> {
    cpu_clock::thread_cpu_time_us()
}

/// A point-in-time reading of the calling thread's resource counters,
/// taken at span open and close to attribute consumption to the span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStamp {
    /// Thread CPU time (µs), when the target supports it.
    pub cpu_us: Option<u64>,
    /// Thread-local allocation count.
    pub allocs: u64,
    /// Thread-local allocated bytes.
    pub alloc_bytes: u64,
}

/// Reads the calling thread's CPU clock and allocation counters.
pub fn resource_stamp() -> ResourceStamp {
    let alloc = thread_alloc_stats();
    ResourceStamp {
        cpu_us: thread_cpu_time_us(),
        allocs: alloc.allocs,
        alloc_bytes: alloc.bytes,
    }
}

impl ResourceStamp {
    /// `(cpu_us, allocs, alloc_bytes)` consumed between `start` and
    /// `self`; CPU reads 0 when either end lacks a CPU clock.
    pub fn since(&self, start: &ResourceStamp) -> (u64, u64, u64) {
        let cpu = match (self.cpu_us, start.cpu_us) {
            (Some(end), Some(begin)) => end.saturating_sub(begin),
            _ => 0,
        };
        (
            cpu,
            self.allocs.saturating_sub(start.allocs),
            self.alloc_bytes.saturating_sub(start.alloc_bytes),
        )
    }
}

/// Which per-span quantity weights the folded profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileWeight {
    /// Wall-clock microseconds.
    Wall,
    /// Thread CPU microseconds.
    Cpu,
    /// Allocated bytes.
    AllocBytes,
    /// Allocation count.
    AllocCount,
}

impl ProfileWeight {
    /// Every weighting, in the order artifacts are emitted.
    pub const ALL: [ProfileWeight; 4] = [
        ProfileWeight::Wall,
        ProfileWeight::Cpu,
        ProfileWeight::AllocBytes,
        ProfileWeight::AllocCount,
    ];

    /// Canonical name (also the `?weight=` parameter value).
    pub fn as_str(&self) -> &'static str {
        match self {
            ProfileWeight::Wall => "wall",
            ProfileWeight::Cpu => "cpu",
            ProfileWeight::AllocBytes => "alloc",
            ProfileWeight::AllocCount => "alloc_count",
        }
    }

    /// Parses a `?weight=` parameter value (aliases accepted).
    pub fn parse(s: &str) -> Option<ProfileWeight> {
        match s {
            "wall" | "time" => Some(ProfileWeight::Wall),
            "cpu" => Some(ProfileWeight::Cpu),
            "alloc" | "alloc_bytes" | "bytes" => Some(ProfileWeight::AllocBytes),
            "alloc_count" | "allocs" => Some(ProfileWeight::AllocCount),
            _ => None,
        }
    }
}

/// A span name reduced to a legal folded-format frame: `;` is the stack
/// separator and whitespace breaks the weight column, so both map to
/// `_`; empty names become `unknown`.
fn frame(name: &str) -> String {
    if name.is_empty() {
        return "unknown".to_string();
    }
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn node_value(node: &SpanNode, weight: ProfileWeight) -> u64 {
    match weight {
        ProfileWeight::Wall => node.dur_us,
        ProfileWeight::Cpu => node.cpu_us,
        ProfileWeight::AllocBytes => node.alloc_bytes,
        ProfileWeight::AllocCount => node.allocs,
    }
}

fn fold_into(
    node: &SpanNode,
    prefix: &str,
    weight: ProfileWeight,
    agg: &mut BTreeMap<String, u64>,
) {
    let stack = if prefix.is_empty() {
        frame(&node.name)
    } else {
        format!("{prefix};{}", frame(&node.name))
    };
    // Self weight: the node's inclusive value minus its children's — the
    // time/bytes spent in this frame itself. Span values are inclusive
    // (each child interval nests inside the parent), so the subtraction
    // can only clip on clock jitter; saturate rather than wrap.
    let children_sum: u64 = node.children.iter().map(|c| node_value(c, weight)).sum();
    let self_weight = node_value(node, weight).saturating_sub(children_sum);
    if self_weight > 0 {
        *agg.entry(stack.clone()).or_insert(0) += self_weight;
    }
    for child in &node.children {
        fold_into(child, &stack, weight, agg);
    }
}

/// Aggregates a span forest into collapsed-stack (folded) format: one
/// `root;child;leaf weight` line per distinct stack with nonzero self
/// weight, sorted by stack for deterministic output. Feed the result to
/// any flamegraph renderer (inferno, flamegraph.pl, speedscope).
pub fn folded_stacks(spans: &[SpanNode], weight: ProfileWeight) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for root in spans {
        fold_into(root, "", weight, &mut agg);
    }
    let mut out = String::new();
    for (stack, w) in &agg {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

/// Sum of the weights in a folded profile (0 for empty or unparseable
/// input) — the total the profile accounts for.
pub fn folded_total(folded: &str) -> u64 {
    folded
        .lines()
        .filter_map(|line| line.rsplit_once(' '))
        .filter_map(|(_, w)| w.parse::<u64>().ok())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, start_us: u64, dur_us: u64, cpu_us: u64, bytes: u64) -> SpanNode {
        SpanNode {
            name: name.into(),
            start_us,
            dur_us,
            cpu_us,
            allocs: bytes / 64,
            alloc_bytes: bytes,
            attrs: vec![],
            children: vec![],
        }
    }

    fn tree() -> SpanNode {
        SpanNode {
            name: "query".into(),
            start_us: 0,
            dur_us: 100,
            cpu_us: 60,
            allocs: 10,
            alloc_bytes: 640,
            attrs: vec![],
            children: vec![
                leaf("plan", 5, 30, 20, 128),
                leaf("execute", 40, 50, 30, 256),
            ],
        }
    }

    #[test]
    fn folded_wall_weights_are_self_time_and_total_matches_root() {
        let folded = folded_stacks(&[tree()], ProfileWeight::Wall);
        assert_eq!(
            folded, "query 20\nquery;execute 50\nquery;plan 30\n",
            "{folded}"
        );
        assert_eq!(folded_total(&folded), 100);
    }

    #[test]
    fn folded_supports_all_weightings() {
        let t = tree();
        let cpu = folded_stacks(std::slice::from_ref(&t), ProfileWeight::Cpu);
        assert!(cpu.contains("query;plan 20"), "{cpu}");
        assert_eq!(folded_total(&cpu), 60);
        let bytes = folded_stacks(std::slice::from_ref(&t), ProfileWeight::AllocBytes);
        assert!(bytes.contains("query;execute 256"), "{bytes}");
        assert_eq!(folded_total(&bytes), 640);
        let count = folded_stacks(&[t], ProfileWeight::AllocCount);
        // 10 − (2 + 4) = 4 self allocations at the root.
        assert!(count.contains("query 4"), "{count}");
    }

    #[test]
    fn zero_self_weight_stacks_are_omitted() {
        let mut t = tree();
        t.dur_us = 80; // exactly the children's sum: no self time
        let folded = folded_stacks(&[t], ProfileWeight::Wall);
        assert!(!folded.contains("query "), "{folded}");
        assert!(folded.contains("query;plan 30"));
    }

    #[test]
    fn frames_are_sanitised() {
        let node = leaf("a;b c\nd", 0, 10, 0, 0);
        let folded = folded_stacks(&[node], ProfileWeight::Wall);
        assert_eq!(folded, "a_b_c_d 10\n");
        let anon = leaf("", 0, 5, 0, 0);
        let folded = folded_stacks(&[anon], ProfileWeight::Wall);
        assert_eq!(folded, "unknown 5\n");
    }

    #[test]
    fn weight_parse_round_trips() {
        for w in ProfileWeight::ALL {
            assert_eq!(ProfileWeight::parse(w.as_str()), Some(w));
        }
        assert_eq!(
            ProfileWeight::parse("bytes"),
            Some(ProfileWeight::AllocBytes)
        );
        assert_eq!(ProfileWeight::parse("nope"), None);
    }

    #[test]
    fn cpu_clock_is_monotone_on_supported_targets() {
        if let Some(first) = thread_cpu_time_us() {
            // Burn a little CPU; the clock must not go backwards.
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            let second = thread_cpu_time_us().expect("clock vanished");
            assert!(second >= first, "{second} < {first}");
        }
    }

    #[test]
    fn resource_stamp_since_is_saturating_and_component_wise() {
        let start = ResourceStamp {
            cpu_us: Some(100),
            allocs: 10,
            alloc_bytes: 1_000,
        };
        let end = ResourceStamp {
            cpu_us: Some(150),
            allocs: 25,
            alloc_bytes: 3_000,
        };
        assert_eq!(end.since(&start), (50, 15, 2_000));
        // Missing CPU on either end reads zero CPU, not a panic.
        let no_cpu = ResourceStamp {
            cpu_us: None,
            ..end
        };
        assert_eq!(no_cpu.since(&start), (0, 15, 2_000));
        assert_eq!(start.since(&end), (0, 0, 0));
    }

    #[test]
    fn alloc_stats_delta_and_live_bytes() {
        let a = AllocStats {
            allocs: 10,
            bytes: 1_000,
            frees: 4,
            freed_bytes: 300,
        };
        let b = AllocStats {
            allocs: 14,
            bytes: 1_500,
            frees: 9,
            freed_bytes: 900,
        };
        assert_eq!(
            b.delta_since(&a),
            AllocStats {
                allocs: 4,
                bytes: 500,
                frees: 5,
                freed_bytes: 600,
            }
        );
        assert_eq!(b.live_bytes(), 600);
        // A thread that frees more than it allocated floors at zero.
        let freer = AllocStats {
            allocs: 1,
            bytes: 10,
            frees: 5,
            freed_bytes: 500,
        };
        assert_eq!(freer.live_bytes(), 0);
    }
}
