//! The span tree: RAII guards that record wall-clock intervals, nesting,
//! and key/value attributes, forming one tree per traced operation.
//!
//! Spans close on drop, so instrumented code cannot leak an open span on
//! early return; [`Tracer::drain_trace`] gracefully closes anything still
//! open (e.g. after a panic unwound past a guard).

use crate::profile::{resource_stamp, ResourceStamp};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded (possibly still-open) span.
#[derive(Debug, Clone)]
struct SpanRecord {
    id: u64,
    name: String,
    parent: Option<u64>,
    start_us: u64,
    dur_us: Option<u64>,
    /// Resource counters read at span open on the opening thread.
    start_res: ResourceStamp,
    /// Thread CPU time consumed over the span (0 until closed, or when
    /// the span closed off-thread / the target has no thread CPU clock).
    cpu_us: u64,
    /// Allocations counted over the span (0 unless a counting allocator
    /// is installed; see `crate::profile`).
    allocs: u64,
    /// Bytes allocated over the span.
    alloc_bytes: u64,
    attrs: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Arena {
    records: Vec<SpanRecord>,
    /// Ids of currently-open spans, outermost first.
    stack: Vec<u64>,
    next_id: u64,
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    arena: Mutex<Arena>,
}

/// Records spans into an arena shared by all clones of the handle.
///
/// The nesting model is a single stack: a new span's parent is the most
/// recently opened span that has not closed yet. The pipeline this crate
/// instruments runs one query at a time on one thread, which is exactly
/// the shape a stack captures; concurrent spans from multiple threads
/// would interleave parents arbitrarily and are not supported.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer with its epoch at "now".
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                arena: Mutex::new(Arena::default()),
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span named `name`, nested under the innermost open span.
    /// The span closes (records its duration) when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let start_us = self.now_us();
        let start_res = resource_stamp();
        let mut arena = self.inner.arena.lock().expect("tracer lock");
        let id = arena.next_id;
        arena.next_id += 1;
        let parent = arena.stack.last().copied();
        arena.records.push(SpanRecord {
            id,
            name: name.to_string(),
            parent,
            start_us,
            dur_us: None,
            start_res,
            cpu_us: 0,
            allocs: 0,
            alloc_bytes: 0,
            attrs: Vec::new(),
        });
        arena.stack.push(id);
        SpanGuard {
            tracer: self.clone(),
            id,
        }
    }

    /// Number of spans recorded (open or closed) since the last drain.
    pub fn len(&self) -> usize {
        self.inner.arena.lock().expect("tracer lock").records.len()
    }

    /// True when no spans have been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every recorded span out of the arena as a forest of
    /// [`SpanNode`] trees (one root per top-level span, creation order).
    /// Spans still open are closed at "now". Guards outliving the drain
    /// become inert.
    pub fn drain_trace(&self) -> Vec<SpanNode> {
        let now = self.now_us();
        let mut arena = self.inner.arena.lock().expect("tracer lock");
        let records = std::mem::take(&mut arena.records);
        arena.stack.clear();
        drop(arena);
        build_forest(records, now)
    }

    /// Closes the span. `end_res` carries the closing thread's resource
    /// counters: guards pass a fresh stamp (open and close happen on the
    /// span's own thread, so the delta is meaningful); `drain_trace`
    /// passes `None` and the span keeps zero resource attribution.
    fn close(&self, id: u64, end_res: Option<ResourceStamp>) {
        let now = self.now_us();
        let mut arena = self.inner.arena.lock().expect("tracer lock");
        if let Some(rec) = arena.records.iter_mut().rev().find(|r| r.id == id) {
            if rec.dur_us.is_none() {
                rec.dur_us = Some(now.saturating_sub(rec.start_us));
                if let Some(end) = end_res {
                    let (cpu_us, allocs, alloc_bytes) = end.since(&rec.start_res);
                    rec.cpu_us = cpu_us;
                    rec.allocs = allocs;
                    rec.alloc_bytes = alloc_bytes;
                }
            }
        }
        arena.stack.retain(|open| *open != id);
    }

    fn set_attr(&self, id: u64, key: &str, value: String) {
        let mut arena = self.inner.arena.lock().expect("tracer lock");
        if let Some(rec) = arena.records.iter_mut().rev().find(|r| r.id == id) {
            rec.attrs.push((key.to_string(), value));
        }
    }
}

/// RAII handle for an open span; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
}

impl SpanGuard {
    /// Attaches a key/value attribute to the span.
    pub fn attr(&self, key: &str, value: impl Into<String>) -> &Self {
        self.tracer.set_attr(self.id, key, value.into());
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // The stamp is read before taking the arena lock so lock wait
        // never counts as span CPU time.
        let end_res = resource_stamp();
        self.tracer.close(self.id, Some(end_res));
    }
}

/// One node of a completed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (e.g. a pipeline stage).
    pub name: String,
    /// Start offset from the tracer epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Thread CPU time consumed while the span was open (0 when the
    /// target has no thread CPU clock or the span was drain-closed).
    pub cpu_us: u64,
    /// Allocations counted while the span was open (0 unless the
    /// counting allocator is installed in this binary).
    pub allocs: u64,
    /// Bytes allocated while the span was open.
    pub alloc_bytes: u64,
    /// Key/value attributes in attachment order.
    pub attrs: Vec<(String, String)>,
    /// Child spans in creation order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total number of spans in this subtree (including `self`).
    pub fn total_spans(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::total_spans)
            .sum::<usize>()
    }

    /// Depth-first search for the first span with the given name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Checks the structural invariant exporters and tests rely on: every
    /// child interval nests within its parent's `[start, start+dur]`
    /// interval, recursively.
    pub fn well_formed(&self) -> bool {
        let end = self.start_us + self.dur_us;
        self.children
            .iter()
            .all(|c| c.start_us >= self.start_us && c.start_us + c.dur_us <= end && c.well_formed())
    }

    /// Renders the subtree as an indented text block (durations in ms).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let attrs = if self.attrs.is_empty() {
            String::new()
        } else {
            let kv: Vec<String> = self.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", kv.join(", "))
        };
        out.push_str(&format!(
            "{:indent$}{} {:.3}ms{}\n",
            "",
            self.name,
            self.dur_us as f64 / 1000.0,
            attrs,
            indent = depth * 2
        ));
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

fn build_forest(records: Vec<SpanRecord>, now_us: u64) -> Vec<SpanNode> {
    // Index children by parent id, preserving creation order.
    let mut children_of: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        match rec.parent {
            Some(p) => children_of.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    fn build(
        i: usize,
        records: &[SpanRecord],
        children_of: &std::collections::BTreeMap<u64, Vec<usize>>,
        now_us: u64,
    ) -> SpanNode {
        let rec = &records[i];
        let dur_us = rec
            .dur_us
            .unwrap_or_else(|| now_us.saturating_sub(rec.start_us));
        SpanNode {
            name: rec.name.clone(),
            start_us: rec.start_us,
            dur_us,
            cpu_us: rec.cpu_us,
            allocs: rec.allocs,
            alloc_bytes: rec.alloc_bytes,
            attrs: rec.attrs.clone(),
            children: children_of
                .get(&rec.id)
                .map(|ids| {
                    ids.iter()
                        .map(|&c| build(c, records, children_of, now_us))
                        .collect()
                })
                .unwrap_or_default(),
        }
    }
    roots
        .into_iter()
        .map(|i| build(i, &records, &children_of, now_us))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_on_drop() {
        let t = Tracer::new();
        {
            let root = t.span("query");
            root.attr("question", "total by region");
            {
                let _a = t.span("plan");
            }
            {
                let b = t.span("execute");
                b.attr("agents", "2");
                let _c = t.span("agent:sql_agent");
            }
        }
        let forest = t.drain_trace();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.name, "query");
        assert_eq!(
            root.attrs,
            vec![("question".to_string(), "total by region".to_string())]
        );
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "plan");
        assert_eq!(root.children[1].name, "execute");
        assert_eq!(root.children[1].children[0].name, "agent:sql_agent");
        assert_eq!(root.total_spans(), 4);
        assert!(root.well_formed(), "{root:?}");
        assert!(root.find("agent:sql_agent").is_some());
        assert!(root.find("nope").is_none());
        // Drained: the arena is empty again.
        assert!(t.is_empty());
    }

    #[test]
    fn early_return_closes_inner_spans_first() {
        let t = Tracer::new();
        fn work(t: &Tracer) -> Option<()> {
            let _s = t.span("outer");
            let _i = t.span("inner");
            None? // early return with both guards live
        }
        assert!(work(&t).is_none());
        let forest = t.drain_trace();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].children.len(), 1);
        assert!(forest[0].well_formed());
    }

    #[test]
    fn open_spans_are_closed_by_drain() {
        let t = Tracer::new();
        let g = t.span("still_open");
        let forest = t.drain_trace();
        assert_eq!(forest.len(), 1);
        // The guard outlives the drain and must be inert.
        drop(g);
        assert!(t.is_empty());
    }

    #[test]
    fn sibling_roots_form_a_forest() {
        let t = Tracer::new();
        {
            let _a = t.span("first");
        }
        {
            let _b = t.span("second");
        }
        let forest = t.drain_trace();
        let names: Vec<&str> = forest.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn drain_closed_spans_have_zero_resource_attribution() {
        let t = Tracer::new();
        {
            let _closed = t.span("closed_by_guard");
        }
        let _open = t.span("left_open");
        let forest = t.drain_trace();
        // The drain may run on any thread, so a span it force-closes
        // gets no CPU/alloc attribution rather than a bogus cross-thread
        // delta.
        let open = forest.iter().find(|n| n.name == "left_open").unwrap();
        assert_eq!(open.cpu_us, 0);
        assert_eq!(open.allocs, 0);
        assert_eq!(open.alloc_bytes, 0);
    }

    #[test]
    fn render_indents_children() {
        let t = Tracer::new();
        {
            let _r = t.span("root");
            let _c = t.span("child");
        }
        let text = t.drain_trace()[0].render();
        assert!(text.starts_with("root "), "{text}");
        assert!(text.contains("\n  child "), "{text}");
    }
}
