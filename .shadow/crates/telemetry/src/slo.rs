//! Per-tenant SLO tracking: sliding-window SLIs with error-budget burn
//! rates.
//!
//! Two SLIs are tracked per tenant:
//!
//! * **availability** — fraction of requests that succeeded;
//! * **latency** — fraction of requests completing under a threshold.
//!
//! Each SLI is evaluated over a *fast* and a *slow* sliding window
//! (Google SRE's multi-window pattern): the fast window catches sudden
//! regressions quickly, the slow window filters out blips. For a target
//! `T` the error budget is `1 − T`, and the **burn rate** of a window is
//!
//! ```text
//! burn = bad_fraction / (1 − T)
//! ```
//!
//! Burn 1.0 means the tenant is consuming budget exactly as fast as the
//! SLO allows; sustained burn above 1.0 on *both* windows means the
//! budget will be exhausted — that is the alerting condition
//! [`TenantSlo::budget_exhausted`] exposes.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Per-tenant sample cap: bounds memory for tenants that outpace the
/// slow window's natural pruning.
const MAX_SAMPLES_PER_TENANT: usize = 4096;

/// Declared SLO targets.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTargets {
    /// Availability target in `(0, 1)`, e.g. `0.99`.
    pub availability: f64,
    /// Latency threshold in microseconds a "fast enough" request must
    /// finish under.
    pub latency_threshold_us: u64,
    /// Fraction of requests that must beat the threshold, e.g. `0.95`.
    pub latency_goal: f64,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            availability: 0.99,
            latency_threshold_us: 2_000_000,
            latency_goal: 0.95,
        }
    }
}

/// The two sliding-window lengths burn rates are computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloWindows {
    /// Fast window (µs) — catches sudden regressions.
    pub fast_us: u64,
    /// Slow window (µs) — filters blips; also the retention horizon.
    pub slow_us: u64,
}

impl Default for SloWindows {
    fn default() -> Self {
        SloWindows {
            fast_us: 60_000_000,
            slow_us: 600_000_000,
        }
    }
}

/// Error-budget burn rate: the window's bad fraction divided by the
/// budget `1 − target`. Empty windows burn nothing; a degenerate target
/// of 1.0 is clamped so the division stays finite.
pub fn burn_rate(bad: u64, total: u64, target: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bad as f64 / total as f64;
    let budget = (1.0 - target).max(1e-9);
    bad_fraction / budget
}

/// One observed request outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SloSample {
    at_us: u64,
    ok: bool,
    latency_us: u64,
}

/// SLI readings for one window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSli {
    /// Requests observed in the window.
    pub requests: u64,
    /// Requests that succeeded.
    pub good: u64,
    /// Requests under the latency threshold.
    pub fast_enough: u64,
    /// `good / requests` (1.0 when empty).
    pub availability: f64,
    /// `fast_enough / requests` (1.0 when empty).
    pub latency_ok_ratio: f64,
    /// Availability error-budget burn rate.
    pub availability_burn: f64,
    /// Latency error-budget burn rate.
    pub latency_burn: f64,
}

/// One tenant's SLO state: fast and slow window readings.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantSlo {
    /// Readings over the fast window.
    pub fast: WindowSli,
    /// Readings over the slow window.
    pub slow: WindowSli,
}

impl TenantSlo {
    /// Multi-window alert condition: some budget (availability or
    /// latency) is burning at ≥ 1.0 on *both* windows — the regression
    /// is current (fast) and sustained (slow).
    pub fn budget_exhausted(&self) -> bool {
        (self.fast.availability_burn >= 1.0 && self.slow.availability_burn >= 1.0)
            || (self.fast.latency_burn >= 1.0 && self.slow.latency_burn >= 1.0)
    }
}

/// Thread-safe per-tenant SLO tracker. Observe one sample per request;
/// read back burn rates with [`SloTracker::report`].
#[derive(Debug)]
pub struct SloTracker {
    targets: SloTargets,
    windows: SloWindows,
    epoch: Instant,
    state: Mutex<BTreeMap<String, VecDeque<SloSample>>>,
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(SloTargets::default(), SloWindows::default())
    }
}

impl SloTracker {
    /// A fresh tracker with the given targets and windows.
    pub fn new(targets: SloTargets, windows: SloWindows) -> Self {
        SloTracker {
            targets,
            windows,
            epoch: Instant::now(),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// The declared targets.
    pub fn targets(&self) -> &SloTargets {
        &self.targets
    }

    /// The window configuration.
    pub fn windows(&self) -> SloWindows {
        self.windows
    }

    /// Records one request outcome for `tenant` at the current time.
    pub fn observe(&self, tenant: &str, ok: bool, latency_us: u64) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        self.observe_at(tenant, at_us, ok, latency_us);
    }

    /// Clock-injected form of [`SloTracker::observe`] (`at_us` is
    /// microseconds since the tracker's epoch; must be non-decreasing
    /// per tenant for pruning to behave).
    pub fn observe_at(&self, tenant: &str, at_us: u64, ok: bool, latency_us: u64) {
        let mut state = self.state.lock().expect("slo tracker lock");
        let samples = state.entry(tenant.to_string()).or_default();
        samples.push_back(SloSample {
            at_us,
            ok,
            latency_us,
        });
        let horizon = at_us.saturating_sub(self.windows.slow_us);
        while let Some(front) = samples.front() {
            if front.at_us < horizon || samples.len() > MAX_SAMPLES_PER_TENANT {
                samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Evaluates every tenant's windows as of the current time,
    /// tenant-sorted.
    pub fn report(&self) -> Vec<(String, TenantSlo)> {
        self.report_at(self.epoch.elapsed().as_micros() as u64)
    }

    /// Clock-injected form of [`SloTracker::report`].
    pub fn report_at(&self, now_us: u64) -> Vec<(String, TenantSlo)> {
        let state = self.state.lock().expect("slo tracker lock");
        state
            .iter()
            .map(|(tenant, samples)| {
                let slo = TenantSlo {
                    fast: self.window_sli(samples, now_us, self.windows.fast_us),
                    slow: self.window_sli(samples, now_us, self.windows.slow_us),
                };
                (tenant.clone(), slo)
            })
            .collect()
    }

    fn window_sli(&self, samples: &VecDeque<SloSample>, now_us: u64, window_us: u64) -> WindowSli {
        let cutoff = now_us.saturating_sub(window_us);
        let mut requests = 0u64;
        let mut good = 0u64;
        let mut fast_enough = 0u64;
        for s in samples.iter().rev() {
            if s.at_us < cutoff {
                break;
            }
            requests += 1;
            if s.ok {
                good += 1;
            }
            if s.latency_us <= self.targets.latency_threshold_us {
                fast_enough += 1;
            }
        }
        let ratio = |n: u64| {
            if requests == 0 {
                1.0
            } else {
                n as f64 / requests as f64
            }
        };
        WindowSli {
            requests,
            good,
            fast_enough,
            availability: ratio(good),
            latency_ok_ratio: ratio(fast_enough),
            availability_burn: burn_rate(requests - good, requests, self.targets.availability),
            latency_burn: burn_rate(requests - fast_enough, requests, self.targets.latency_goal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(
            SloTargets {
                availability: 0.99,
                latency_threshold_us: 1_000,
                latency_goal: 0.9,
            },
            SloWindows {
                fast_us: 1_000_000,
                slow_us: 10_000_000,
            },
        )
    }

    #[test]
    fn burn_rate_math() {
        // 2% bad against a 99% target burns budget at 2x.
        assert!((burn_rate(2, 100, 0.99) - 2.0).abs() < 1e-9);
        // Exactly-on-budget burns at 1.0.
        assert!((burn_rate(1, 100, 0.99) - 1.0).abs() < 1e-9);
        assert_eq!(burn_rate(0, 100, 0.99), 0.0);
        assert_eq!(burn_rate(0, 0, 0.99), 0.0);
        // Degenerate 100% target stays finite.
        assert!(burn_rate(1, 2, 1.0).is_finite());
    }

    #[test]
    fn windows_separate_current_from_sustained() {
        let t = tracker();
        // Old, clean traffic (outside fast window, inside slow).
        for i in 0..50 {
            t.observe_at("t0", 1_000_000 + i, true, 100);
        }
        // Recent traffic: half errors.
        for i in 0..10 {
            t.observe_at("t0", 9_500_000 + i, i % 2 == 0, 100);
        }
        let report = t.report_at(9_600_000);
        let (tenant, slo) = &report[0];
        assert_eq!(tenant, "t0");
        assert_eq!(slo.fast.requests, 10);
        assert_eq!(slo.fast.good, 5);
        assert!((slo.fast.availability - 0.5).abs() < 1e-9);
        assert!(slo.fast.availability_burn > 1.0);
        assert_eq!(slo.slow.requests, 60);
        assert!(slo.slow.availability > 0.9);
        // Fast burning but slow not yet: no exhaustion alert.
        assert!(slo.fast.availability_burn >= 1.0);
        assert!(!slo.budget_exhausted() || slo.slow.availability_burn >= 1.0);
    }

    #[test]
    fn latency_sli_counts_threshold_misses() {
        let t = tracker();
        for i in 0..10 {
            // 3 of 10 over the 1ms threshold; all available.
            let latency = if i < 3 { 5_000 } else { 100 };
            t.observe_at("t0", 100 + i, true, latency);
        }
        let report = t.report_at(200);
        let slo = report[0].1;
        assert_eq!(slo.fast.fast_enough, 7);
        assert!((slo.fast.latency_ok_ratio - 0.7).abs() < 1e-9);
        // 30% misses against a 10% budget: burn 3x on both windows.
        assert!((slo.fast.latency_burn - 3.0).abs() < 1e-9);
        assert!(slo.budget_exhausted());
        assert_eq!(slo.fast.availability_burn, 0.0);
    }

    #[test]
    fn empty_windows_read_healthy() {
        let t = tracker();
        t.observe_at("t0", 100, false, 50);
        // Far in the future: everything aged out of both windows.
        let report = t.report_at(100_000_000);
        let slo = report[0].1;
        assert_eq!(slo.fast.requests, 0);
        assert_eq!(slo.fast.availability, 1.0);
        assert_eq!(slo.fast.availability_burn, 0.0);
        assert!(!slo.budget_exhausted());
    }

    #[test]
    fn tenants_are_isolated_and_sorted() {
        let t = tracker();
        t.observe_at("beta", 10, false, 50);
        t.observe_at("alpha", 10, true, 50);
        let report = t.report_at(20);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "alpha");
        assert_eq!(report[1].0, "beta");
        assert_eq!(report[0].1.fast.good, 1);
        assert_eq!(report[1].1.fast.good, 0);
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let t = tracker();
        for i in 0..(MAX_SAMPLES_PER_TENANT as u64 + 500) {
            // All at the "same" time so the horizon never prunes.
            t.observe_at("t0", 1_000 + i / 1_000_000, true, 10);
        }
        let state = t.state.lock().unwrap();
        assert!(state["t0"].len() <= MAX_SAMPLES_PER_TENANT);
    }
}
