//! Observability substrate for the DataLab pipeline: span-tree tracing,
//! a metrics registry, and per-stage/per-agent token accounting.
//!
//! The one type most callers touch is [`Telemetry`], a cheaply-cloneable
//! handle bundling three concerns:
//!
//! 1. **Spans** — [`Telemetry::span`] / [`Telemetry::stage`] /
//!    [`Telemetry::agent_scope`] return RAII guards that record
//!    wall-clock intervals into one tree per traced query.
//! 2. **Metrics** — [`Telemetry::metrics`] exposes named counters and
//!    fixed-bucket histograms (`llm.calls`, `sandbox.retries`, …).
//! 3. **Token attribution** — [`Telemetry::record_llm_call`] charges a
//!    model call to the innermost open stage/agent scope, so a query's
//!    spend can be broken down by pipeline stage and agent role.
//! 4. **Events** — [`Telemetry::record_event`] appends a typed,
//!    monotonically-sequenced event to a bounded ring buffer (the
//!    *flight recorder*); the tail of the ring reconstructs the moments
//!    leading up to a failure.
//!
//! The crate has no dependencies by design: observability must never be
//! the reason the rest of the workspace fails to build.

#![warn(missing_docs)]

mod context;
mod events;
mod export;
mod metrics;
mod profile;
mod slo;
mod span;
mod summary;
mod tracestore;

pub use context::{RequestContext, TraceId, MAX_TRACE_ID_LEN};
pub use events::{
    is_error_kind, render_flight_record, Event, EventKind, EventLog, DEFAULT_EVENT_CAPACITY,
    MAX_EVENT_DETAIL_BYTES,
};
pub use export::{
    chrome_trace_json, event_json, json_escape, metrics_json, metrics_prometheus, metrics_text,
    span_json,
};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_BUCKETS,
};
pub use profile::{
    allocator_installed, folded_stacks, folded_total, global_alloc_stats, publish_alloc_metrics,
    resource_stamp, thread_alloc_stats, thread_cpu_time_us, AllocStats, CountingAlloc,
    ProfileWeight, ResourceStamp, ALLOC_BYTES_BUCKETS, ALLOC_COUNT_BUCKETS,
};
pub use slo::{burn_rate, SloTargets, SloTracker, SloWindows, TenantSlo, WindowSli};
pub use span::{SpanGuard, SpanNode, Tracer};
pub use summary::{AttributedUsage, QuerySummary, TokenUsage};
pub use tracestore::{
    RetainReason, StoredTrace, TraceRecord, TraceStore, TraceStorePolicy, TraceSummary,
};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Stage,
    Agent,
}

#[derive(Debug, Default)]
struct AttribState {
    /// Open attribution scopes, outermost first.
    scopes: Vec<(u64, ScopeKind, String)>,
    /// (stage, agent) → usage, over the whole lifetime of the handle.
    attribution: BTreeMap<(String, String), TokenUsage>,
    next_scope_id: u64,
}

impl AttribState {
    fn current_key(&self) -> (String, String) {
        let mut stage = None;
        let mut agent = None;
        for (_, kind, name) in self.scopes.iter().rev() {
            match kind {
                ScopeKind::Stage if stage.is_none() => stage = Some(name.clone()),
                ScopeKind::Agent if agent.is_none() => agent = Some(name.clone()),
                _ => {}
            }
        }
        (
            stage.unwrap_or_else(|| "unattributed".to_string()),
            agent.unwrap_or_else(|| "-".to_string()),
        )
    }
}

/// A handle to one telemetry pipeline: tracer + metrics + attribution.
///
/// Clones share state, so the platform can hand the same handle to the
/// LLM, the agents, and the knowledge layer, then collect one coherent
/// picture per query.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    tracer: Tracer,
    metrics: Arc<MetricsRegistry>,
    events: Arc<EventLog>,
    state: Arc<Mutex<AttribState>>,
    /// The request trace currently being served, shared by all clones.
    /// While set, every recorded event and every stage/agent scope span
    /// is tagged with the trace ID.
    trace: Arc<Mutex<Option<TraceId>>>,
}

impl Telemetry {
    /// A fresh, empty telemetry pipeline.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The underlying tracer (for direct span control or draining).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry shared by all clones of this handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The event log (flight recorder) shared by all clones of this
    /// handle: a bounded ring of typed, monotonically-sequenced events.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Records one typed event into the flight recorder, tagged with the
    /// active request trace when one is set.
    pub fn record_event(&self, kind: EventKind, detail: impl Into<String>) {
        self.events
            .record_traced(kind, detail, self.current_trace_string());
    }

    /// Sets (or clears, with `None`) the request trace this handle — and
    /// every clone of it — is currently serving. The platform sets it at
    /// query start and clears it at query end; sessions serve one query
    /// at a time, so the slot never sees concurrent traces.
    pub fn set_trace(&self, trace: Option<TraceId>) {
        *self.trace.lock().expect("telemetry trace lock") = trace;
    }

    /// The request trace currently being served, if any.
    pub fn current_trace(&self) -> Option<TraceId> {
        self.trace.lock().expect("telemetry trace lock").clone()
    }

    fn current_trace_string(&self) -> Option<String> {
        self.trace
            .lock()
            .expect("telemetry trace lock")
            .as_ref()
            .map(|t| t.as_str().to_string())
    }

    /// The last `n` events, oldest first — the forensic tail attached to
    /// failed queries.
    pub fn flight_record(&self, n: usize) -> Vec<Event> {
        self.events.tail(n)
    }

    /// Opens a plain span with no attribution side effects. When a
    /// request trace is active (see [`Telemetry::set_trace`]) the span
    /// is tagged with a `trace_id` attribute.
    pub fn span(&self, name: &str) -> SpanGuard {
        let span = self.tracer.span(name);
        if let Some(trace) = self.current_trace() {
            span.attr("trace_id", trace.as_str());
        }
        span
    }

    /// Opens a pipeline-stage scope: a span named `name` plus a stage
    /// attribution scope. Model calls made while the guard lives are
    /// charged to this stage.
    pub fn stage(&self, name: &str) -> ScopeGuard {
        self.scoped(name, name, ScopeKind::Stage)
    }

    /// Opens an agent scope: a span named `agent:{role}` plus an agent
    /// attribution scope. Model calls made while the guard lives are
    /// charged to this agent (and the enclosing stage, if any).
    pub fn agent_scope(&self, role: &str) -> ScopeGuard {
        self.scoped(&format!("agent:{role}"), role, ScopeKind::Agent)
    }

    fn scoped(&self, span_name: &str, scope_name: &str, kind: ScopeKind) -> ScopeGuard {
        let span = self.span(span_name);
        let start_res = resource_stamp();
        let mut state = self.state.lock().expect("telemetry lock");
        let id = state.next_scope_id;
        state.next_scope_id += 1;
        state.scopes.push((id, kind, scope_name.to_string()));
        drop(state);
        ScopeGuard {
            telemetry: self.clone(),
            span,
            scope_id: id,
            scope_name: scope_name.to_string(),
            kind,
            start_res,
        }
    }

    fn close_scope(&self, id: u64) {
        let mut state = self.state.lock().expect("telemetry lock");
        state.scopes.retain(|(sid, _, _)| *sid != id);
    }

    /// Charges one model call to the innermost open stage/agent scopes
    /// and folds the counts into the metrics registry (`llm.calls`,
    /// `llm.prompt_tokens`, `llm.completion_tokens`, `llm.call_tokens`).
    pub fn record_llm_call(&self, prompt_tokens: u64, completion_tokens: u64) {
        self.events.record_traced(
            EventKind::LlmCall,
            format!("prompt={prompt_tokens} completion={completion_tokens}"),
            self.current_trace_string(),
        );
        self.metrics.incr("llm.calls", 1);
        self.metrics.incr("llm.prompt_tokens", prompt_tokens);
        self.metrics
            .incr("llm.completion_tokens", completion_tokens);
        self.metrics
            .observe("llm.call_tokens", prompt_tokens + completion_tokens);
        let mut state = self.state.lock().expect("telemetry lock");
        let key = state.current_key();
        let entry = state.attribution.entry(key).or_default();
        entry.prompt_tokens += prompt_tokens;
        entry.completion_tokens += completion_tokens;
        entry.calls += 1;
    }

    /// All usage attributed since this handle was created, key-sorted.
    pub fn attribution(&self) -> Vec<AttributedUsage> {
        let state = self.state.lock().expect("telemetry lock");
        state
            .attribution
            .iter()
            .map(|((stage, agent), usage)| AttributedUsage {
                stage: stage.clone(),
                agent: agent.clone(),
                usage: *usage,
            })
            .collect()
    }

    /// Sum of all attributed usage since this handle was created.
    pub fn token_totals(&self) -> TokenUsage {
        let state = self.state.lock().expect("telemetry lock");
        state
            .attribution
            .values()
            .fold(TokenUsage::default(), |acc, u| acc.add(u))
    }

    /// Drains the tracer into a span forest (see [`Tracer::drain_trace`]).
    pub fn drain_trace(&self) -> Vec<SpanNode> {
        self.tracer.drain_trace()
    }

    /// Packages the drained span forest plus the attribution *delta*
    /// against `baseline` (usage attributed before the query started)
    /// into a [`QuerySummary`]. Attribution state itself is cumulative;
    /// pass [`Telemetry::attribution`] taken before the query began.
    pub fn finish_query(&self, baseline: &[AttributedUsage]) -> QuerySummary {
        let spans = self.drain_trace();
        let attribution = attribution_delta(baseline, &self.attribution());
        let total = attribution
            .iter()
            .fold(TokenUsage::default(), |acc, a| acc.add(&a.usage));
        QuerySummary {
            spans,
            attribution,
            total,
        }
    }

    /// Current metrics + attribution as one JSON object (see
    /// [`metrics_json`]). Allocator totals are refreshed into `alloc.*`
    /// instruments first, so snapshots always carry current counts.
    pub fn snapshot_json(&self) -> String {
        publish_alloc_metrics(&self.metrics);
        metrics_json(&self.metrics.snapshot(), &self.attribution())
    }
}

/// The usage attributed between two [`Telemetry::attribution`] snapshots:
/// every (stage, agent) pair whose usage grew, with the growth amount.
pub fn attribution_delta(
    before: &[AttributedUsage],
    after: &[AttributedUsage],
) -> Vec<AttributedUsage> {
    let prior: BTreeMap<(&str, &str), &TokenUsage> = before
        .iter()
        .map(|a| ((a.stage.as_str(), a.agent.as_str()), &a.usage))
        .collect();
    after
        .iter()
        .filter_map(|a| {
            let delta = match prior.get(&(a.stage.as_str(), a.agent.as_str())) {
                Some(p) => a.usage.saturating_sub(p),
                None => a.usage,
            };
            (delta != TokenUsage::default()).then(|| AttributedUsage {
                stage: a.stage.clone(),
                agent: a.agent.clone(),
                usage: delta,
            })
        })
        .collect()
}

/// RAII guard for a stage or agent scope: closes both the span and the
/// attribution scope on drop, and feeds the scope's resource consumption
/// into per-stage profiling histograms.
#[derive(Debug)]
pub struct ScopeGuard {
    telemetry: Telemetry,
    span: SpanGuard,
    scope_id: u64,
    scope_name: String,
    kind: ScopeKind,
    start_res: ResourceStamp,
}

impl ScopeGuard {
    /// Attaches a key/value attribute to the scope's span.
    pub fn attr(&self, key: &str, value: impl Into<String>) -> &Self {
        self.span.attr(key, value);
        self
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        self.telemetry.close_scope(self.scope_id);
        // Per-stage resource histograms (stages only: agent scopes nest
        // inside stages and would double-count; their consumption is
        // still on their own spans). Allocation histograms only appear
        // when a counting allocator is live, so binaries that skip it
        // don't export rows of zeros.
        if self.kind == ScopeKind::Stage {
            let end_res = resource_stamp();
            let (cpu_us, allocs, alloc_bytes) = end_res.since(&self.start_res);
            let metrics = &self.telemetry.metrics;
            if end_res.cpu_us.is_some() {
                metrics.observe(&format!("cpu.stage_us.{}", self.scope_name), cpu_us);
            }
            if allocator_installed() {
                metrics.observe_with_buckets(
                    &format!("alloc.stage_bytes.{}", self.scope_name),
                    alloc_bytes,
                    ALLOC_BYTES_BUCKETS,
                );
                metrics.observe_with_buckets(
                    &format!("alloc.stage_allocs.{}", self.scope_name),
                    allocs,
                    ALLOC_COUNT_BUCKETS,
                );
            }
        }
        // self.span drops afterwards and closes the span itself.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_calls_attribute_to_innermost_stage_and_agent() {
        let t = Telemetry::new();
        {
            let _q = t.span("query");
            {
                let _s = t.stage("rewrite");
                t.record_llm_call(10, 2);
            }
            {
                let _s = t.stage("execute");
                {
                    let _a = t.agent_scope("sql_agent");
                    t.record_llm_call(30, 5);
                    t.record_llm_call(7, 1);
                }
            }
        }
        let attribution = t.attribution();
        assert_eq!(attribution.len(), 2);
        assert_eq!(attribution[0].stage, "execute");
        assert_eq!(attribution[0].agent, "sql_agent");
        assert_eq!(
            attribution[0].usage,
            TokenUsage {
                prompt_tokens: 37,
                completion_tokens: 6,
                calls: 2
            }
        );
        assert_eq!(attribution[1].stage, "rewrite");
        assert_eq!(attribution[1].agent, "-");
        assert_eq!(
            t.token_totals(),
            TokenUsage {
                prompt_tokens: 47,
                completion_tokens: 8,
                calls: 3
            }
        );
        // The metrics registry mirrors the same counts.
        assert_eq!(t.metrics().counter("llm.calls"), 3);
        assert_eq!(t.metrics().counter("llm.prompt_tokens"), 47);
        assert_eq!(t.metrics().counter("llm.completion_tokens"), 8);
        assert_eq!(t.metrics().histogram("llm.call_tokens").unwrap().count, 3);
    }

    #[test]
    fn calls_outside_any_scope_are_unattributed() {
        let t = Telemetry::new();
        t.record_llm_call(5, 5);
        let attribution = t.attribution();
        assert_eq!(attribution.len(), 1);
        assert_eq!(attribution[0].stage, "unattributed");
        assert_eq!(attribution[0].agent, "-");
    }

    #[test]
    fn stage_and_agent_scopes_open_spans() {
        let t = Telemetry::new();
        {
            let _q = t.span("query");
            let s = t.stage("execute");
            s.attr("plan_steps", "2");
            let _a = t.agent_scope("code_agent");
        }
        let forest = t.drain_trace();
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.children[0].name, "execute");
        assert_eq!(
            root.children[0].attrs,
            vec![("plan_steps".into(), "2".into())]
        );
        assert_eq!(root.children[0].children[0].name, "agent:code_agent");
        assert!(root.well_formed());
    }

    #[test]
    fn finish_query_reports_only_the_delta() {
        let t = Telemetry::new();
        {
            let _s = t.stage("execute");
            t.record_llm_call(10, 1);
        }
        let baseline = t.attribution();
        {
            let _q = t.span("query");
            let _s = t.stage("execute");
            t.record_llm_call(20, 2);
        }
        let summary = t.finish_query(&baseline);
        assert_eq!(summary.attribution.len(), 1);
        assert_eq!(
            summary.attribution[0].usage,
            TokenUsage {
                prompt_tokens: 20,
                completion_tokens: 2,
                calls: 1
            }
        );
        assert_eq!(summary.total.calls, 1);
        // Spans drained: first query's stage span + second query tree were
        // both still in the arena (never drained before), so the forest
        // has two roots; root() is None in that case.
        assert_eq!(summary.spans.len(), 2);
        // A second finish sees an empty arena and an empty delta.
        let baseline2 = t.attribution();
        let summary2 = t.finish_query(&baseline2);
        assert!(summary2.spans.is_empty());
        assert!(summary2.attribution.is_empty());
    }

    #[test]
    fn attribution_delta_handles_new_and_grown_keys() {
        let before = vec![AttributedUsage {
            stage: "execute".into(),
            agent: "sql_agent".into(),
            usage: TokenUsage {
                prompt_tokens: 10,
                completion_tokens: 1,
                calls: 1,
            },
        }];
        let after = vec![
            AttributedUsage {
                stage: "execute".into(),
                agent: "sql_agent".into(),
                usage: TokenUsage {
                    prompt_tokens: 25,
                    completion_tokens: 3,
                    calls: 2,
                },
            },
            AttributedUsage {
                stage: "synthesize".into(),
                agent: "-".into(),
                usage: TokenUsage {
                    prompt_tokens: 5,
                    completion_tokens: 5,
                    calls: 1,
                },
            },
        ];
        let delta = attribution_delta(&before, &after);
        assert_eq!(delta.len(), 2);
        assert_eq!(
            delta[0].usage,
            TokenUsage {
                prompt_tokens: 15,
                completion_tokens: 2,
                calls: 1
            }
        );
        assert_eq!(delta[1].stage, "synthesize");
        // Unchanged keys drop out entirely.
        assert!(attribution_delta(&after, &after).is_empty());
    }

    #[test]
    fn active_trace_tags_events_and_scope_spans() {
        let t = Telemetry::new();
        t.set_trace(Some(TraceId::parse("req-1").unwrap()));
        {
            let _q = t.span("query");
            let _s = t.stage("execute");
            t.record_llm_call(3, 1);
        }
        t.record_event(EventKind::Retry, "attempt 1");
        t.set_trace(None);
        t.record_event(EventKind::QueryEnd, "ok");
        let events = t.flight_record(8);
        assert_eq!(events[0].trace.as_deref(), Some("req-1"));
        assert_eq!(events[1].trace.as_deref(), Some("req-1"));
        assert_eq!(events[2].trace, None);
        let forest = t.drain_trace();
        let stage = &forest[0].children[0];
        assert!(
            stage
                .attrs
                .iter()
                .any(|(k, v)| k == "trace_id" && v == "req-1"),
            "{stage:?}"
        );
        // Plain spans are tagged too.
        assert_eq!(
            forest[0].attrs,
            vec![("trace_id".to_string(), "req-1".to_string())]
        );
        // Clones observe the shared slot.
        let clone = t.clone();
        clone.set_trace(Some(TraceId::parse("req-2").unwrap()));
        assert_eq!(t.current_trace().unwrap().as_str(), "req-2");
    }

    #[test]
    fn stage_scopes_feed_cpu_histograms_where_the_clock_exists() {
        let t = Telemetry::new();
        {
            let _s = t.stage("execute");
        }
        {
            let _s = t.stage("execute");
        }
        if thread_cpu_time_us().is_some() {
            let h = t.metrics().histogram("cpu.stage_us.execute").unwrap();
            assert_eq!(h.count, 2);
        } else {
            assert!(t.metrics().histogram("cpu.stage_us.execute").is_none());
        }
        // Agent scopes never observe stage histograms.
        {
            let _a = t.agent_scope("sql_agent");
        }
        assert!(t.metrics().histogram("cpu.stage_us.sql_agent").is_none());
    }

    #[test]
    fn snapshot_json_carries_alloc_instruments() {
        let t = Telemetry::new();
        let json = t.snapshot_json();
        // Always present (zero when no counting allocator is installed).
        assert!(json.contains("\"alloc.allocs\":"), "{json}");
        assert!(json.contains("\"alloc.live_bytes\":"), "{json}");
    }

    #[test]
    fn clones_share_all_state() {
        let t = Telemetry::new();
        let clone = t.clone();
        let _s = t.stage("execute");
        clone.record_llm_call(3, 3);
        clone.metrics().incr("sandbox.retries", 1);
        clone.record_event(EventKind::Retry, "attempt 1");
        assert_eq!(t.attribution()[0].stage, "execute");
        assert_eq!(t.metrics().counter("sandbox.retries"), 1);
        assert_eq!(t.tracer().len(), 1);
        // The llm call and the explicit retry both hit the shared ring.
        assert_eq!(t.events().total_recorded(), 2);
        let flight = t.flight_record(8);
        assert_eq!(flight[0].kind, EventKind::LlmCall);
        assert_eq!(flight[1].kind, EventKind::Retry);
    }
}
