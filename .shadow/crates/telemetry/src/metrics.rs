//! The metrics registry: named monotonic counters, point-in-time gauges,
//! and fixed-bucket histograms, safe to update from any thread.
//!
//! Registration is lazy — the first `incr`/`gauge_add`/`observe` of a
//! name creates the instrument — so call sites never coordinate setup.
//! Hot-path updates are a single atomic add once the instrument exists.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Upper-inclusive bucket bounds that fit both token counts and
/// microsecond durations; values above the last bound land in the
/// overflow bucket.
pub const DEFAULT_BUCKETS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 1_000_000,
];

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        // Binary search over the sorted, upper-inclusive bounds: the
        // target slot is the first bound >= value, i.e. the count of
        // bounds strictly below it. Values above every bound land at
        // `bounds.len()` — the overflow slot. This runs on every
        // hot-path observation, so O(log n) beats the linear scan even
        // at the default 18 buckets.
        let slot = self.bounds.partition_point(|b| *b < value);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            count: counts.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; the final slot is the overflow
    /// bucket for values above the last bound.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile readout (`q` in `[0, 1]`).
    ///
    /// Walks the cumulative counts to the bucket containing the `q`-th
    /// observation and reports that bucket's upper bound, tightened to
    /// the recorded maximum — so the value always lies within the
    /// bucket's `(lower, upper]` bounds, and the top of the distribution
    /// never overstates the observed max. Observations in the overflow
    /// bucket (above the last bound) report the recorded maximum.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count), at
        // least 1 so q=0 reads the first observation's bucket.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (slot, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return match self.bounds.get(slot) {
                    Some(upper) => (*upper).min(self.max),
                    None => self.max, // overflow bucket
                };
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (see [`HistogramSnapshot::percentile`]).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (see [`HistogramSnapshot::percentile`]).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile (see [`HistogramSnapshot::percentile`]) — the
    /// deep-tail read load reports use to catch rare stalls.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

/// A point-in-time copy of every instrument in a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → value, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → snapshot, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The value of a gauge in this snapshot (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// The registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh registry with no instruments.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn counter_handle(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("metrics lock").get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().expect("metrics lock");
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn incr(&self, name: &str, delta: u64) {
        self.counter_handle(name)
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Stores an absolute value into the named counter, creating it
    /// first. For mirroring monotone totals accumulated *outside* the
    /// registry (e.g. the process-wide allocator counters) into it at
    /// scrape time; prefer [`MetricsRegistry::incr`] for totals the
    /// registry itself owns.
    pub fn counter_set(&self, name: &str, value: u64) {
        self.counter_handle(name).store(value, Ordering::Relaxed);
    }

    /// Current value of the named counter (0 when it never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn gauge_handle(&self, name: &str) -> Arc<AtomicI64> {
        if let Some(g) = self.gauges.read().expect("metrics lock").get(name) {
            return Arc::clone(g);
        }
        let mut w = self.gauges.write().expect("metrics lock");
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        )
    }

    /// Adds `delta` (possibly negative) to the named gauge, creating it
    /// at zero first. Gauges model levels — queue depth, active
    /// sessions — where counters model monotone totals.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        self.gauge_handle(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the named gauge to an absolute value, creating it first.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.gauge_handle(name).store(value, Ordering::Relaxed);
    }

    /// Drops every gauge whose name fails the predicate. Callers holding
    /// a handle to a removed gauge keep a working (but orphaned) atomic;
    /// the gauge simply stops appearing in snapshots. Used to evict
    /// stale per-tenant instruments so label cardinality stays bounded.
    pub fn retain_gauges<F: FnMut(&str) -> bool>(&self, mut keep: F) {
        self.gauges
            .write()
            .expect("metrics lock")
            .retain(|name, _| keep(name));
    }

    /// Current value of the named gauge (0 when it was never touched).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records `value` into the named histogram, creating it with
    /// [`DEFAULT_BUCKETS`] on first use.
    pub fn observe(&self, name: &str, value: u64) {
        // The read guard must drop before the write path runs (this
        // statement ends, releasing it) — holding both deadlocks.
        let existing = self
            .histograms
            .read()
            .expect("metrics lock")
            .get(name)
            .map(Arc::clone);
        let h = match existing {
            Some(h) => h,
            None => {
                let mut w = self.histograms.write().expect("metrics lock");
                Arc::clone(
                    w.entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new(DEFAULT_BUCKETS))),
                )
            }
        };
        h.observe(value);
    }

    /// Records `value` into the named histogram, creating it with the
    /// given upper-inclusive bounds on first use (an existing histogram
    /// keeps its original bounds).
    pub fn observe_with_buckets(&self, name: &str, value: u64, bounds: &[u64]) {
        let existing = self
            .histograms
            .read()
            .expect("metrics lock")
            .get(name)
            .map(Arc::clone);
        let h = match existing {
            Some(h) => h,
            None => {
                let mut w = self.histograms.write().expect("metrics lock");
                Arc::clone(
                    w.entry(name.to_string())
                        .or_insert_with(|| Arc::new(Histogram::new(bounds))),
                )
            }
        };
        h.observe(value);
    }

    /// Pre-registers the named histogram with custom upper-inclusive
    /// bucket bounds (no-op if it already exists).
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[u64]) {
        let mut w = self.histograms.write().expect("metrics lock");
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)));
    }

    /// Snapshot of the named histogram, when it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .read()
            .expect("metrics lock")
            .get(name)
            .map(|h| h.snapshot())
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_create_lazily_and_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("llm.calls"), 0);
        m.incr("llm.calls", 1);
        m.incr("llm.calls", 2);
        assert_eq!(m.counter("llm.calls"), 3);
        let snap = m.snapshot();
        assert_eq!(snap.counter("llm.calls"), 3);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn counter_increments_are_atomic_across_threads() {
        let m = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    m.incr("contended", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("contended"), 80_000);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("server.queue.depth"), 0);
        m.gauge_add("server.queue.depth", 3);
        m.gauge_add("server.queue.depth", -2);
        assert_eq!(m.gauge("server.queue.depth"), 1);
        m.gauge_set("server.queue.depth", 7);
        assert_eq!(m.gauge("server.queue.depth"), 7);
        let snap = m.snapshot();
        assert_eq!(snap.gauge("server.queue.depth"), 7);
        assert_eq!(snap.gauge("absent"), 0);
    }

    #[test]
    fn gauge_updates_are_atomic_across_threads() {
        let m = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    m.gauge_add("level", 1);
                    m.gauge_add("level", -1);
                }
                m.gauge_add("level", 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.gauge("level"), 8);
    }

    #[test]
    fn histogram_bucket_bounds_are_upper_inclusive() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("h", &[10, 100]);
        m.observe("h", 0); // -> bucket 0 (<=10)
        m.observe("h", 10); // -> bucket 0 (boundary, inclusive)
        m.observe("h", 11); // -> bucket 1 (<=100)
        m.observe("h", 100); // -> bucket 1 (boundary, inclusive)
        m.observe("h", 101); // -> overflow
        let s = m.histogram("h").unwrap();
        assert_eq!(s.counts, vec![2, 2, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 222);
        assert!((s.mean() - 44.4).abs() < 1e-9);
    }

    #[test]
    fn default_buckets_cover_all_values() {
        let m = MetricsRegistry::new();
        for v in [0u64, 1, 3, 999, 1_000_000, u64::MAX] {
            m.observe("wide", v);
        }
        let s = m.histogram("wide").unwrap();
        assert_eq!(s.count, 6);
        assert_eq!(s.counts.len(), DEFAULT_BUCKETS.len() + 1);
        assert_eq!(*s.counts.last().unwrap(), 1); // only u64::MAX overflows
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("e", &[1]);
        assert_eq!(m.histogram("e").unwrap().mean(), 0.0);
        assert!(m.histogram("absent").is_none());
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("e", &[10, 100]);
        let s = m.histogram("e").unwrap();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p90(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("one", &[10, 100, 1000]);
        m.observe("one", 42);
        let s = m.histogram("one").unwrap();
        // The max tightens the bucket's upper bound (100) to the exact
        // observed value.
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p90(), 42);
        assert_eq!(s.p99(), 42);
        assert_eq!(s.percentile(0.0), 42);
        assert_eq!(s.percentile(1.0), 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn overflow_only_histogram_reports_the_max() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("over", &[10]);
        for v in [500u64, 900, 700] {
            m.observe("over", v);
        }
        let s = m.histogram("over").unwrap();
        assert_eq!(s.counts, vec![0, 3]);
        // Every percentile lands in the overflow bucket, whose only
        // honest readout is the recorded maximum — strictly above the
        // last bound, as the bucket's range requires.
        assert_eq!(s.p50(), 900);
        assert_eq!(s.p99(), 900);
        assert!(s.p50() > *s.bounds.last().unwrap());
    }

    #[test]
    fn bucket_selection_matches_the_linear_scan() {
        // The binary search must agree with the obvious linear reference
        // on boundaries, interior values, and overflow.
        let bounds: Vec<u64> = DEFAULT_BUCKETS.to_vec();
        for value in [
            0u64,
            1,
            2,
            3,
            999,
            1_000,
            1_001,
            999_999,
            1_000_000,
            u64::MAX,
        ] {
            let linear = bounds
                .iter()
                .position(|b| value <= *b)
                .unwrap_or(bounds.len());
            let binary = bounds.partition_point(|b| *b < value);
            assert_eq!(binary, linear, "value {value}");
        }
    }

    #[test]
    fn counter_set_mirrors_external_totals() {
        let m = MetricsRegistry::new();
        m.counter_set("alloc.bytes", 4_096);
        assert_eq!(m.counter("alloc.bytes"), 4_096);
        m.counter_set("alloc.bytes", 8_192);
        assert_eq!(m.counter("alloc.bytes"), 8_192);
    }

    #[test]
    fn retain_gauges_evicts_by_name() {
        let m = MetricsRegistry::new();
        m.gauge_set("slo.budget_exhausted.alpha", 1);
        m.gauge_set("slo.budget_exhausted.beta", 0);
        m.gauge_set("server.queue.depth", 3);
        m.retain_gauges(|name| !name.ends_with(".alpha"));
        let snap = m.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["server.queue.depth", "slo.budget_exhausted.beta"]
        );
        // Re-creating an evicted gauge starts from zero.
        assert_eq!(m.gauge("slo.budget_exhausted.alpha"), 0);
    }

    #[test]
    fn observe_with_buckets_registers_on_first_use_only() {
        let m = MetricsRegistry::new();
        m.observe_with_buckets("bytes", 3_000, &[1_024, 4_096]);
        // Later bounds are ignored: the histogram keeps its shape.
        m.observe_with_buckets("bytes", 5_000, &[1]);
        let s = m.histogram("bytes").unwrap();
        assert_eq!(s.bounds, vec![1_024, 4_096]);
        assert_eq!(s.counts, vec![0, 1, 1]);
    }

    #[test]
    fn percentiles_walk_cumulative_buckets() {
        let m = MetricsRegistry::new();
        m.histogram_with_buckets("lat", &[10, 100, 1000]);
        // 90 fast observations, 9 medium, 1 slow: p50 in the first
        // bucket, p90 at its edge, p99 in the second, max in the third.
        for _ in 0..90 {
            m.observe("lat", 5);
        }
        for _ in 0..9 {
            m.observe("lat", 50);
        }
        m.observe("lat", 700);
        let s = m.histogram("lat").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 10);
        assert_eq!(s.p90(), 10);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.percentile(1.0), 700);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
    }
}
