//! Per-query summaries: the span tree, token attribution, and totals for
//! one `query()` call, packaged for attachment to a response.

use crate::export::{attribution_entry_json, chrome_trace_json, span_json};
use crate::span::SpanNode;

/// Token usage for one attribution bucket (or a grand total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenUsage {
    /// Prompt-side tokens.
    pub prompt_tokens: u64,
    /// Completion-side tokens.
    pub completion_tokens: u64,
    /// Number of model calls.
    pub calls: u64,
}

impl TokenUsage {
    /// Prompt plus completion tokens.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Component-wise sum.
    pub fn add(&self, other: &TokenUsage) -> TokenUsage {
        TokenUsage {
            prompt_tokens: self.prompt_tokens + other.prompt_tokens,
            completion_tokens: self.completion_tokens + other.completion_tokens,
            calls: self.calls + other.calls,
        }
    }

    /// Component-wise difference, saturating at zero.
    pub fn saturating_sub(&self, other: &TokenUsage) -> TokenUsage {
        TokenUsage {
            prompt_tokens: self.prompt_tokens.saturating_sub(other.prompt_tokens),
            completion_tokens: self
                .completion_tokens
                .saturating_sub(other.completion_tokens),
            calls: self.calls.saturating_sub(other.calls),
        }
    }
}

/// Token usage attributed to one (pipeline stage, agent) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributedUsage {
    /// Pipeline stage the calls ran under (e.g. `rewrite`, `execute`),
    /// or `unattributed` for calls outside any stage scope.
    pub stage: String,
    /// Agent active during the calls (e.g. `sql_agent`), or `-` when no
    /// agent scope was open (platform-level calls).
    pub agent: String,
    /// Usage accumulated under this (stage, agent) pair.
    pub usage: TokenUsage,
}

/// Everything telemetry observed during one `query()` call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySummary {
    /// The query's span forest (normally a single `query` root).
    pub spans: Vec<SpanNode>,
    /// Per-(stage, agent) token usage, key-sorted.
    pub attribution: Vec<AttributedUsage>,
    /// Sum of all attributed usage for this query.
    pub total: TokenUsage,
}

impl QuerySummary {
    /// The root span, when exactly one tree was recorded.
    pub fn root(&self) -> Option<&SpanNode> {
        if self.spans.len() == 1 {
            self.spans.first()
        } else {
            None
        }
    }

    /// Names of the root's direct children — the pipeline stages — in
    /// execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.root()
            .map(|r| r.children.iter().map(|c| c.name.as_str()).collect())
            .unwrap_or_default()
    }

    /// The summary's span forest as Chrome `trace_event` JSON.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.spans)
    }

    /// The whole summary (spans + attribution + totals) as JSON.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans.iter().map(span_json).collect();
        let attribution: Vec<String> = self
            .attribution
            .iter()
            .map(attribution_entry_json)
            .collect();
        format!(
            "{{\"spans\":[{}],\"attribution\":[{}],\"total\":{{\"prompt_tokens\":{},\"completion_tokens\":{},\"calls\":{}}}}}",
            spans.join(","),
            attribution.join(","),
            self.total.prompt_tokens,
            self.total.completion_tokens,
            self.total.calls
        )
    }

    /// Human-readable report: the indented span tree followed by a token
    /// table per (stage, agent) pair.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in &self.spans {
            out.push_str(&root.render());
        }
        if !self.attribution.is_empty() {
            out.push_str("tokens by stage/agent:\n");
            for a in &self.attribution {
                out.push_str(&format!(
                    "  {:<12} {:<12} {:>3} calls  {:>6} prompt  {:>6} completion\n",
                    a.stage,
                    a.agent,
                    a.usage.calls,
                    a.usage.prompt_tokens,
                    a.usage.completion_tokens
                ));
            }
        }
        out.push_str(&format!(
            "total: {} calls, {} tokens ({} prompt + {} completion)\n",
            self.total.calls,
            self.total.total(),
            self.total.prompt_tokens,
            self.total.completion_tokens
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> QuerySummary {
        QuerySummary {
            spans: vec![SpanNode {
                name: "query".into(),
                start_us: 0,
                dur_us: 50,
                cpu_us: 0,
                allocs: 0,
                alloc_bytes: 0,
                attrs: vec![],
                children: vec![
                    SpanNode {
                        name: "rewrite".into(),
                        start_us: 1,
                        dur_us: 10,
                        cpu_us: 0,
                        allocs: 0,
                        alloc_bytes: 0,
                        attrs: vec![],
                        children: vec![],
                    },
                    SpanNode {
                        name: "execute".into(),
                        start_us: 12,
                        dur_us: 30,
                        cpu_us: 0,
                        allocs: 0,
                        alloc_bytes: 0,
                        attrs: vec![],
                        children: vec![],
                    },
                ],
            }],
            attribution: vec![
                AttributedUsage {
                    stage: "execute".into(),
                    agent: "sql_agent".into(),
                    usage: TokenUsage {
                        prompt_tokens: 30,
                        completion_tokens: 5,
                        calls: 1,
                    },
                },
                AttributedUsage {
                    stage: "rewrite".into(),
                    agent: "-".into(),
                    usage: TokenUsage {
                        prompt_tokens: 10,
                        completion_tokens: 2,
                        calls: 1,
                    },
                },
            ],
            total: TokenUsage {
                prompt_tokens: 40,
                completion_tokens: 7,
                calls: 2,
            },
        }
    }

    #[test]
    fn usage_arithmetic() {
        let a = TokenUsage {
            prompt_tokens: 10,
            completion_tokens: 4,
            calls: 2,
        };
        let b = TokenUsage {
            prompt_tokens: 3,
            completion_tokens: 1,
            calls: 1,
        };
        assert_eq!(a.total(), 14);
        assert_eq!(
            a.add(&b),
            TokenUsage {
                prompt_tokens: 13,
                completion_tokens: 5,
                calls: 3
            }
        );
        assert_eq!(b.saturating_sub(&a), TokenUsage::default());
        assert_eq!(
            a.saturating_sub(&b),
            TokenUsage {
                prompt_tokens: 7,
                completion_tokens: 3,
                calls: 1
            }
        );
    }

    #[test]
    fn stage_names_come_from_root_children() {
        let s = summary();
        assert_eq!(s.stage_names(), vec!["rewrite", "execute"]);
        assert!(s.root().is_some());
        assert!(QuerySummary::default().root().is_none());
        assert!(QuerySummary::default().stage_names().is_empty());
    }

    #[test]
    fn render_shows_tree_and_token_table() {
        let text = summary().render();
        assert!(text.contains("query "), "{text}");
        assert!(text.contains("\n  rewrite "), "{text}");
        assert!(text.contains("tokens by stage/agent:"), "{text}");
        assert!(text.contains("sql_agent"), "{text}");
        assert!(
            text.contains("total: 2 calls, 47 tokens (40 prompt + 7 completion)"),
            "{text}"
        );
    }

    #[test]
    fn to_json_and_chrome_trace_have_expected_shape() {
        let s = summary();
        let json = s.to_json();
        assert!(
            json.starts_with("{\"spans\":[{\"name\":\"query\""),
            "{json}"
        );
        assert!(json.contains("\"attribution\":[{\"stage\":\"execute\""));
        assert!(
            json.ends_with("\"total\":{\"prompt_tokens\":40,\"completion_tokens\":7,\"calls\":2}}")
        );
        let trace = s.chrome_trace();
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"execute\""));
    }
}
