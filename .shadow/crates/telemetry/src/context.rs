//! Request-scoped tracing context: trace identifiers and the
//! [`RequestContext`] threaded from the HTTP edge down to the model
//! transport.
//!
//! A [`TraceId`] is either accepted from the caller (an `X-Trace-Id`
//! header, validated by [`TraceId::parse`]) or minted deterministically
//! from a per-server `(seed, counter)` pair by [`TraceId::derive`] — no
//! clocks, no randomness, so replayed runs mint identical IDs. The
//! context rides alongside a query; while it is active the telemetry
//! handle tags every recorded event and every stage/agent span with the
//! trace ID, which is what lets a single request be reassembled later
//! from the trace store.

use std::fmt;

/// Maximum accepted length (bytes) of a caller-supplied trace ID.
pub const MAX_TRACE_ID_LEN: usize = 64;

/// An opaque request trace identifier.
///
/// Valid IDs are 1–[`MAX_TRACE_ID_LEN`] bytes drawn from
/// `[A-Za-z0-9._-]`, which keeps them safe to embed verbatim in HTTP
/// headers, JSON, URL paths, and log lines without escaping.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(String);

impl TraceId {
    /// Validates a caller-supplied ID (e.g. an `X-Trace-Id` header
    /// value). Returns `None` when empty, too long, or containing any
    /// character outside `[A-Za-z0-9._-]`.
    pub fn parse(raw: &str) -> Option<TraceId> {
        let raw = raw.trim();
        if raw.is_empty() || raw.len() > MAX_TRACE_ID_LEN {
            return None;
        }
        let ok = raw
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
        ok.then(|| TraceId(raw.to_string()))
    }

    /// Mints a deterministic ID from a server seed and a request
    /// counter: same `(seed, counter)`, same ID, across runs and
    /// platforms. The mix is FNV-1a over the two values, rendered as 16
    /// hex digits.
    pub fn derive(seed: u64, counter: u64) -> TraceId {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in seed.to_le_bytes().into_iter().chain(counter.to_le_bytes()) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        TraceId(format!("{hash:016x}"))
    }

    /// The ID as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-request context threaded through the stack. Today it carries the
/// optional trace ID; an absent ID means the work is untraced (offline
/// fleet runs, table registration, internal maintenance).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestContext {
    trace_id: Option<TraceId>,
}

impl RequestContext {
    /// An untraced context (same as `RequestContext::default()`).
    pub fn untraced() -> RequestContext {
        RequestContext::default()
    }

    /// A context carrying `trace_id`.
    pub fn traced(trace_id: TraceId) -> RequestContext {
        RequestContext {
            trace_id: Some(trace_id),
        }
    }

    /// The trace ID, if this request is traced.
    pub fn trace_id(&self) -> Option<&TraceId> {
        self.trace_id.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_header_safe_ids_only() {
        assert_eq!(
            TraceId::parse("abc-123_X.z").unwrap().as_str(),
            "abc-123_X.z"
        );
        assert_eq!(TraceId::parse("  padded  ").unwrap().as_str(), "padded");
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("   ").is_none());
        assert!(TraceId::parse("has space").is_none());
        assert!(TraceId::parse("héllo").is_none());
        assert!(TraceId::parse("semi;colon").is_none());
        assert!(TraceId::parse(&"x".repeat(MAX_TRACE_ID_LEN)).is_some());
        assert!(TraceId::parse(&"x".repeat(MAX_TRACE_ID_LEN + 1)).is_none());
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = TraceId::derive(7, 0);
        assert_eq!(a, TraceId::derive(7, 0));
        assert_ne!(a, TraceId::derive(7, 1));
        assert_ne!(a, TraceId::derive(8, 0));
        assert_eq!(a.as_str().len(), 16);
        // Derived IDs round-trip through the validator.
        assert_eq!(TraceId::parse(a.as_str()), Some(a));
    }

    #[test]
    fn context_carries_the_id() {
        assert!(RequestContext::untraced().trace_id().is_none());
        let id = TraceId::derive(1, 2);
        let ctx = RequestContext::traced(id.clone());
        assert_eq!(ctx.trace_id(), Some(&id));
        assert_eq!(format!("{id}"), id.as_str().to_string());
    }
}
