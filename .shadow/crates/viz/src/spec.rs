//! Chart specification types (the Vega-Lite-style grammar agents emit).

use datalab_frame::DataFrame;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when validating or rendering chart specs.
#[derive(Debug, Clone, PartialEq)]
pub enum VizError {
    /// The spec JSON could not be parsed.
    Parse(String),
    /// A referenced field does not exist in the data.
    UnknownField(String),
    /// The spec is structurally incomplete (e.g. bar chart without y).
    Invalid(String),
    /// A field's type is incompatible with its encoding role.
    TypeMismatch(String),
    /// Propagated frame error.
    Frame(String),
}

impl fmt::Display for VizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VizError::Parse(m) => write!(f, "chart spec parse error: {m}"),
            VizError::UnknownField(n) => write!(f, "unknown field in chart spec: {n}"),
            VizError::Invalid(m) => write!(f, "invalid chart spec: {m}"),
            VizError::TypeMismatch(m) => write!(f, "chart spec type mismatch: {m}"),
            VizError::Frame(m) => write!(f, "frame error: {m}"),
        }
    }
}

impl std::error::Error for VizError {}

/// Mark (chart) types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Mark {
    /// Bar chart.
    Bar,
    /// Line chart.
    Line,
    /// Scatter plot.
    Point,
    /// Pie chart.
    Pie,
    /// Area chart.
    Area,
}

impl Mark {
    /// Parses the lowercase name.
    pub fn parse(s: &str) -> Option<Mark> {
        match s {
            "bar" => Some(Mark::Bar),
            "line" => Some(Mark::Line),
            "point" | "scatter" => Some(Mark::Point),
            "pie" | "arc" => Some(Mark::Pie),
            "area" => Some(Mark::Area),
            _ => None,
        }
    }

    /// The lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Mark::Bar => "bar",
            Mark::Line => "line",
            Mark::Point => "point",
            Mark::Pie => "pie",
            Mark::Area => "area",
        }
    }
}

/// A field encoding (axis / angle channel).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FieldDef {
    /// Column name in the data.
    pub field: String,
    /// Optional aggregate (`sum`, `avg`, `count`, `min`, `max`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub aggregate: Option<String>,
}

/// A filter applied to the data before encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartFilter {
    /// Filtered column.
    pub column: String,
    /// Operator: `=`, `>`, `>=`, `<`, `<=`, `between`.
    pub op: String,
    /// Operand (number, string, or `[from, to]` pair for `between`).
    pub value: serde_json::Value,
}

/// A chart specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartSpec {
    /// Mark type.
    pub mark: Mark,
    /// Source table name.
    #[serde(default)]
    pub data: String,
    /// X (or category/theta) encoding.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub x: Option<FieldDef>,
    /// Y (or value) encoding.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub y: Option<FieldDef>,
    /// Optional series/color encoding.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub color: Option<FieldDef>,
    /// Pre-encoding filters.
    #[serde(default)]
    pub filters: Vec<ChartFilter>,
    /// Keep only the top-N categories after sorting.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub limit: Option<usize>,
    /// Sort categories by value descending?
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sort_desc: Option<bool>,
    /// Chart title (affects readability scoring only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub title: Option<String>,
}

impl ChartSpec {
    /// Parses a chart spec from JSON text.
    pub fn from_json(text: &str) -> Result<ChartSpec, VizError> {
        serde_json::from_str(text).map_err(|e| VizError::Parse(e.to_string()))
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Validates the spec against the data it will draw.
    pub fn validate(&self, df: &DataFrame) -> Result<(), VizError> {
        let check = |fd: &Option<FieldDef>, role: &str| -> Result<(), VizError> {
            if let Some(fd) = fd {
                if df.schema().index_of(&fd.field).is_none() {
                    return Err(VizError::UnknownField(format!("{role}: {}", fd.field)));
                }
                if let Some(agg) = &fd.aggregate {
                    let ok = matches!(
                        agg.as_str(),
                        "sum" | "avg" | "mean" | "count" | "count_distinct" | "min" | "max"
                    );
                    if !ok {
                        return Err(VizError::Invalid(format!("unknown aggregate {agg}")));
                    }
                    if matches!(agg.as_str(), "sum" | "avg" | "mean") {
                        let field = df.schema().field(&fd.field).expect("checked above");
                        if !field.dtype.is_numeric() {
                            return Err(VizError::TypeMismatch(format!(
                                "{agg} over non-numeric column {}",
                                fd.field
                            )));
                        }
                    }
                }
            }
            Ok(())
        };
        check(&self.x, "x")?;
        check(&self.y, "y")?;
        check(&self.color, "color")?;
        for f in &self.filters {
            if df.schema().index_of(&f.column).is_none() {
                return Err(VizError::UnknownField(format!("filter: {}", f.column)));
            }
        }
        match self.mark {
            Mark::Bar | Mark::Line | Mark::Area => {
                if self.x.is_none() || self.y.is_none() {
                    return Err(VizError::Invalid(format!(
                        "{} chart requires both x and y",
                        self.mark.name()
                    )));
                }
            }
            Mark::Pie => {
                if self.x.is_none() || self.y.is_none() {
                    return Err(VizError::Invalid(
                        "pie chart requires category and value".into(),
                    ));
                }
            }
            Mark::Point => {
                if self.x.is_none() || self.y.is_none() {
                    return Err(VizError::Invalid("scatter requires x and y".into()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::DataType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            ("region", DataType::Str, vec!["east".into(), "west".into()]),
            ("amount", DataType::Int, vec![10.into(), 20.into()]),
        ])
        .unwrap()
    }

    fn spec_json() -> &'static str {
        r#"{"mark":"bar","data":"sales","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"},"filters":[]}"#
    }

    #[test]
    fn parse_validate_roundtrip() {
        let spec = ChartSpec::from_json(spec_json()).unwrap();
        assert_eq!(spec.mark, Mark::Bar);
        spec.validate(&df()).unwrap();
        let back = ChartSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn unknown_field_rejected() {
        let mut spec = ChartSpec::from_json(spec_json()).unwrap();
        spec.x = Some(FieldDef {
            field: "nope".into(),
            aggregate: None,
        });
        assert!(matches!(
            spec.validate(&df()),
            Err(VizError::UnknownField(_))
        ));
    }

    #[test]
    fn sum_over_string_rejected() {
        let mut spec = ChartSpec::from_json(spec_json()).unwrap();
        spec.y = Some(FieldDef {
            field: "region".into(),
            aggregate: Some("sum".into()),
        });
        assert!(matches!(
            spec.validate(&df()),
            Err(VizError::TypeMismatch(_))
        ));
    }

    #[test]
    fn bar_without_y_rejected() {
        let mut spec = ChartSpec::from_json(spec_json()).unwrap();
        spec.y = None;
        assert!(matches!(spec.validate(&df()), Err(VizError::Invalid(_))));
    }

    #[test]
    fn accepts_llm_shaped_json_with_nulls() {
        // The generator emits "x": null when absent; serde must cope.
        let text = r#"{"mark":"pie","data":"t","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"},"filters":[],"limit":null,"sort_desc":null}"#;
        let spec = ChartSpec::from_json(text).unwrap();
        assert_eq!(spec.mark, Mark::Pie);
        assert!(spec.limit.is_none());
    }
}
