//! Chart "rendering": materialising the data series a chart presents.
//!
//! nvBench's EX metric compares *presented data values and chart types*;
//! rendering a spec down to its aggregated series is exactly the
//! information needed, without rasterising pixels.

use crate::spec::{ChartFilter, ChartSpec, Mark, VizError};
use datalab_frame::{AggExpr, AggFunc, DataFrame, Value};

/// The materialised content of a chart: its mark plus the `(category,
/// series, value)` triples it would draw. `series` is empty when the spec
/// has no color channel.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedChart {
    /// Mark type drawn.
    pub mark: Mark,
    /// Data triples in draw order.
    pub points: Vec<(Value, String, Value)>,
}

fn apply_filter(df: &DataFrame, f: &ChartFilter) -> Result<DataFrame, VizError> {
    let col = df
        .column(&f.column)
        .map_err(|e| VizError::Frame(e.to_string()))?
        .to_vec();
    let pass = |v: &Value| -> bool {
        match (&f.op[..], &f.value) {
            ("between", serde_json::Value::Array(arr)) if arr.len() == 2 => {
                let lo = json_to_value(&arr[0]);
                let hi = json_to_value(&arr[1]);
                !v.is_null()
                    && v.total_cmp(&lo) != std::cmp::Ordering::Less
                    && v.total_cmp(&hi) != std::cmp::Ordering::Greater
            }
            (op, j) => {
                let w = json_to_value(j);
                if v.is_null() || w.is_null() {
                    return false;
                }
                let ord = v.total_cmp(&w);
                match op {
                    "=" | "==" => ord == std::cmp::Ordering::Equal,
                    ">" => ord == std::cmp::Ordering::Greater,
                    ">=" => ord != std::cmp::Ordering::Less,
                    "<" => ord == std::cmp::Ordering::Less,
                    "<=" => ord != std::cmp::Ordering::Greater,
                    "!=" | "<>" => ord != std::cmp::Ordering::Equal,
                    _ => false,
                }
            }
        }
    };
    Ok(df.filter(|i| pass(&col[i])))
}

fn json_to_value(j: &serde_json::Value) -> Value {
    match j {
        serde_json::Value::Null => Value::Null,
        serde_json::Value::Bool(b) => Value::Bool(*b),
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        serde_json::Value::String(s) => {
            if let Ok(d) = datalab_frame::Date::parse(s) {
                Value::Date(d)
            } else {
                Value::Str(s.clone())
            }
        }
        other => Value::Str(other.to_string()),
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    AggFunc::parse(name)
}

/// Renders a validated spec over its data.
pub fn render(spec: &ChartSpec, df: &DataFrame) -> Result<RenderedChart, VizError> {
    spec.validate(df)?;
    let mut data = df.clone();
    for f in &spec.filters {
        data = apply_filter(&data, f)?;
    }
    let x = spec
        .x
        .as_ref()
        .ok_or_else(|| VizError::Invalid("missing x".into()))?;
    let y = spec
        .y
        .as_ref()
        .ok_or_else(|| VizError::Invalid("missing y".into()))?;

    let mut points: Vec<(Value, String, Value)> = Vec::new();
    match &y.aggregate {
        Some(aggname) => {
            let func = agg_func(aggname)
                .ok_or_else(|| VizError::Invalid(format!("unknown aggregate {aggname}")))?;
            let mut dims = vec![x.field.as_str()];
            if let Some(c) = &spec.color {
                dims.push(c.field.as_str());
            }
            let agg = AggExpr::new(func, y.field.clone(), "__v");
            let grouped = data
                .group_by(&dims, &[agg])
                .map_err(|e| VizError::Frame(e.to_string()))?;
            let xs = grouped
                .column(&x.field)
                .map_err(|e| VizError::Frame(e.to_string()))?;
            let vs = grouped
                .column("__v")
                .map_err(|e| VizError::Frame(e.to_string()))?;
            let series: Vec<String> = match &spec.color {
                Some(c) => grouped
                    .column(&c.field)
                    .map_err(|e| VizError::Frame(e.to_string()))?
                    .iter()
                    .map(|v| v.render())
                    .collect(),
                None => vec![String::new(); grouped.n_rows()],
            };
            for i in 0..grouped.n_rows() {
                points.push((xs[i].clone(), series[i].clone(), vs[i].clone()));
            }
        }
        None => {
            // Raw points (scatter / pre-aggregated data).
            let xs = data
                .column(&x.field)
                .map_err(|e| VizError::Frame(e.to_string()))?;
            let ys = data
                .column(&y.field)
                .map_err(|e| VizError::Frame(e.to_string()))?;
            let series: Vec<String> = match &spec.color {
                Some(c) => data
                    .column(&c.field)
                    .map_err(|e| VizError::Frame(e.to_string()))?
                    .iter()
                    .map(|v| v.render())
                    .collect(),
                None => vec![String::new(); data.n_rows()],
            };
            for i in 0..data.n_rows() {
                points.push((xs[i].clone(), series[i].clone(), ys[i].clone()));
            }
        }
    }

    // Sorting: explicit request, or natural x order for temporal marks.
    if spec.sort_desc.is_some() {
        let desc = spec.sort_desc.unwrap_or(true);
        points.sort_by(|a, b| {
            let ord = a.2.total_cmp(&b.2);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
    } else if matches!(spec.mark, Mark::Line | Mark::Area) {
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    if let Some(n) = spec.limit {
        points.truncate(n);
    }
    Ok(RenderedChart {
        mark: spec.mark,
        points,
    })
}

/// Heuristic readability score in `[1, 5]`, mirroring the dimensions the
/// VisEval readability judge considers: mark/data fit, category count,
/// ordering, and labelling.
pub fn readability_score(spec: &ChartSpec, rendered: &RenderedChart) -> f64 {
    let mut score: f64 = 4.0;
    let n = rendered.points.len();
    // Labelling and ordering earn credit (see bottom); the base of 4.0
    // leaves headroom so titled/sorted charts separate from bare ones.
    if (2..=8).contains(&n) {
        score += 0.3;
    }
    // Overcrowding.
    match spec.mark {
        Mark::Pie => {
            if n > 8 {
                score -= 1.5;
            } else if n > 5 {
                score -= 0.5;
            }
        }
        Mark::Bar => {
            if n > 30 {
                score -= 1.5;
            } else if n > 15 {
                score -= 0.5;
            }
        }
        _ => {
            if n > 200 {
                score -= 1.0;
            }
        }
    }
    // Degenerate charts.
    if n <= 1 {
        score -= 1.0;
    }
    // Mark/data fit: lines want ordered (temporal/numeric) x.
    if matches!(spec.mark, Mark::Line | Mark::Area) {
        let temporal_or_numeric = rendered
            .points
            .first()
            .map(|(x, _, _)| x.as_f64().is_some() || x.as_date().is_some())
            .unwrap_or(false);
        if !temporal_or_numeric {
            score -= 1.0;
        }
    }
    // Pie charts of negative values are unreadable.
    if spec.mark == Mark::Pie
        && rendered
            .points
            .iter()
            .any(|(_, _, v)| v.as_f64().map(|f| f < 0.0).unwrap_or(false))
    {
        score -= 2.0;
    }
    // Titles help.
    if spec
        .title
        .as_deref()
        .map(|t| !t.trim().is_empty())
        .unwrap_or(false)
    {
        score += 0.4;
    }
    // Sorted bars read better.
    if spec.mark == Mark::Bar && spec.sort_desc.is_some() {
        score += 0.2;
    }
    score.clamp(1.0, 5.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FieldDef;
    use datalab_frame::DataType;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                vec!["east".into(), "west".into(), "east".into()],
            ),
            (
                "amount",
                DataType::Int,
                vec![10.into(), 20.into(), 5.into()],
            ),
        ])
        .unwrap()
    }

    fn bar_spec() -> ChartSpec {
        ChartSpec {
            mark: Mark::Bar,
            data: "sales".into(),
            x: Some(FieldDef {
                field: "region".into(),
                aggregate: None,
            }),
            y: Some(FieldDef {
                field: "amount".into(),
                aggregate: Some("sum".into()),
            }),
            color: None,
            filters: vec![],
            limit: None,
            sort_desc: None,
            title: None,
        }
    }

    #[test]
    fn renders_aggregated_series() {
        let r = render(&bar_spec(), &df()).unwrap();
        assert_eq!(r.mark, Mark::Bar);
        assert_eq!(r.points.len(), 2);
        let east = r
            .points
            .iter()
            .find(|(x, _, _)| x == &Value::Str("east".into()))
            .unwrap();
        assert_eq!(east.2, Value::Int(15));
    }

    #[test]
    fn filters_apply_before_aggregation() {
        let mut spec = bar_spec();
        spec.filters.push(ChartFilter {
            column: "amount".into(),
            op: ">".into(),
            value: serde_json::json!(7),
        });
        let r = render(&spec, &df()).unwrap();
        let east = r
            .points
            .iter()
            .find(|(x, _, _)| x == &Value::Str("east".into()))
            .unwrap();
        assert_eq!(east.2, Value::Int(10));
    }

    #[test]
    fn sort_and_limit() {
        let mut spec = bar_spec();
        spec.sort_desc = Some(true);
        spec.limit = Some(1);
        let r = render(&spec, &df()).unwrap();
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].0, Value::Str("west".into()));
    }

    #[test]
    fn scatter_keeps_raw_points() {
        let spec = ChartSpec {
            mark: Mark::Point,
            data: "sales".into(),
            x: Some(FieldDef {
                field: "amount".into(),
                aggregate: None,
            }),
            y: Some(FieldDef {
                field: "amount".into(),
                aggregate: None,
            }),
            color: None,
            filters: vec![],
            limit: None,
            sort_desc: None,
            title: None,
        };
        let r = render(&spec, &df()).unwrap();
        assert_eq!(r.points.len(), 3);
    }

    #[test]
    fn readability_penalises_crowded_pie() {
        let spec = ChartSpec {
            mark: Mark::Pie,
            ..bar_spec()
        };
        let crowded = RenderedChart {
            mark: Mark::Pie,
            points: (0..12)
                .map(|i| (Value::Int(i), String::new(), Value::Int(1)))
                .collect(),
        };
        let small = RenderedChart {
            mark: Mark::Pie,
            points: (0..3)
                .map(|i| (Value::Int(i), String::new(), Value::Int(1)))
                .collect(),
        };
        assert!(readability_score(&spec, &small) > readability_score(&spec, &crowded));
    }

    #[test]
    fn readability_penalises_categorical_line() {
        let spec = ChartSpec {
            mark: Mark::Line,
            ..bar_spec()
        };
        let r = render(&spec, &df()).unwrap();
        let s = readability_score(&spec, &r);
        assert!(s < 5.0);
    }
}
