//! Chart execution-equivalence — the nvBench EX metric: two charts are
//! equivalent when they present the same data values with the same chart
//! type.

use crate::render::RenderedChart;
use datalab_frame::Value;

const REL_TOL: f64 = 1e-6;

/// Compares two rendered charts: identical mark and the same multiset of
/// `(category, series, value)` triples (order-insensitive, float
/// tolerance).
pub fn charts_equal(a: &RenderedChart, b: &RenderedChart) -> bool {
    if a.mark != b.mark || a.points.len() != b.points.len() {
        return false;
    }
    let key = |p: &(Value, String, Value)| (p.0.render(), p.1.clone(), p.2.render());
    let mut pa = a.points.clone();
    let mut pb = b.points.clone();
    pa.sort_by_key(key);
    pb.sort_by_key(key);
    pa.iter()
        .zip(&pb)
        .all(|(x, y)| x.0.approx_eq(&y.0, REL_TOL) && x.1 == y.1 && x.2.approx_eq(&y.2, REL_TOL))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mark;

    fn chart(mark: Mark, pts: &[(i64, i64)]) -> RenderedChart {
        RenderedChart {
            mark,
            points: pts
                .iter()
                .map(|&(x, v)| (Value::Int(x), String::new(), Value::Int(v)))
                .collect(),
        }
    }

    #[test]
    fn equal_ignores_order() {
        let a = chart(Mark::Bar, &[(1, 10), (2, 20)]);
        let b = chart(Mark::Bar, &[(2, 20), (1, 10)]);
        assert!(charts_equal(&a, &b));
    }

    #[test]
    fn different_mark_not_equal() {
        let a = chart(Mark::Bar, &[(1, 10)]);
        let b = chart(Mark::Line, &[(1, 10)]);
        assert!(!charts_equal(&a, &b));
    }

    #[test]
    fn different_values_not_equal() {
        let a = chart(Mark::Bar, &[(1, 10)]);
        let b = chart(Mark::Bar, &[(1, 11)]);
        assert!(!charts_equal(&a, &b));
    }

    #[test]
    fn float_tolerance_applies() {
        let a = RenderedChart {
            mark: Mark::Bar,
            points: vec![(Value::Int(1), String::new(), Value::Float(10.0))],
        };
        let b = RenderedChart {
            mark: Mark::Bar,
            points: vec![(Value::Int(1), String::new(), Value::Float(10.0 + 1e-9))],
        };
        assert!(charts_equal(&a, &b));
    }
}
