//! # datalab-viz
//!
//! Chart grammar substrate — the reproduction's stand-in for Vega-Lite:
//! a serializable [`ChartSpec`], validation against data, "rendering" to
//! the aggregated series a chart would present, execution-equivalence
//! comparison for the nvBench EX metric, and a readability heuristic for
//! the VisEval readability score.

#![warn(missing_docs)]

pub mod compare;
pub mod render;
pub mod spec;

pub use compare::charts_equal;
pub use render::{readability_score, render, RenderedChart};
pub use spec::{ChartFilter, ChartSpec, FieldDef, Mark, VizError};
