//! Column schemas.

use crate::error::{FrameError, Result};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (case preserved; lookups are case-insensitive).
    pub name: String,
    /// Logical data type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields describing a table's columns.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names
    /// (case-insensitively).
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i]
                .iter()
                .any(|g| g.name.eq_ignore_ascii_case(&f.name))
            {
                return Err(FrameError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Case-insensitive lookup of a column's index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Case-insensitive lookup of a field.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Like [`Schema::index_of`] but returns an error naming the column.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| FrameError::ColumnNotFound(name.to_string()))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Appends a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.index_of(&field.name).is_some() {
            return Err(FrameError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .fields
            .iter()
            .map(|fd| format!("{} {}", fd.name, fd.dtype))
            .collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates_case_insensitive() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("A", DataType::Str),
        ]);
        assert!(matches!(r, Err(FrameError::DuplicateColumn(_))));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::new(vec![Field::new("Revenue", DataType::Float)]).unwrap();
        assert_eq!(s.index_of("revenue"), Some(0));
        assert_eq!(s.require("REVENUE").unwrap(), 0);
        assert!(s.require("missing").is_err());
    }
}
