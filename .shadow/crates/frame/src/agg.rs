//! Aggregate functions over value slices.

use crate::error::{FrameError, Result};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The aggregate functions supported by the engine — the set BI DSLs and
/// SQL workloads in the paper exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(col)` / `COUNT(*)` — non-null count (all rows for `*`).
    Count,
    /// `COUNT(DISTINCT col)`.
    CountDistinct,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// Parses the SQL/DSL spelling of an aggregate.
    pub fn parse(s: &str) -> Option<AggFunc> {
        match s.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "count_distinct" | "countdistinct" => Some(AggFunc::CountDistinct),
            "sum" => Some(AggFunc::Sum),
            "avg" | "mean" | "average" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// SQL spelling (upper-case).
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Result type for an input column of type `input`.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => {
                if input == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Applies the aggregate to the given values (nulls ignored, per SQL
    /// semantics). An empty / all-null input yields `Null` for everything
    /// except counts, which yield `0`.
    pub fn apply(&self, values: &[&Value]) -> Result<Value> {
        match self {
            AggFunc::Count => Ok(Value::Int(
                values.iter().filter(|v| !v.is_null()).count() as i64
            )),
            AggFunc::CountDistinct => {
                let set: HashSet<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
                Ok(Value::Int(set.len() as i64))
            }
            AggFunc::Sum => {
                let mut any = false;
                let mut all_int = true;
                let mut acc = 0.0f64;
                let mut iacc: i64 = 0;
                for v in values {
                    match v {
                        Value::Null => {}
                        Value::Int(i) => {
                            any = true;
                            iacc = iacc.wrapping_add(*i);
                            acc += *i as f64;
                        }
                        Value::Float(f) => {
                            any = true;
                            all_int = false;
                            acc += f;
                        }
                        other => {
                            return Err(FrameError::TypeMismatch {
                                expected: "numeric".into(),
                                found: other.dtype().to_string(),
                            })
                        }
                    }
                }
                if !any {
                    Ok(Value::Null)
                } else if all_int {
                    Ok(Value::Int(iacc))
                } else {
                    Ok(Value::Float(acc))
                }
            }
            AggFunc::Avg => {
                let mut n = 0usize;
                let mut acc = 0.0f64;
                for v in values {
                    if v.is_null() {
                        continue;
                    }
                    let f = v.as_f64().ok_or_else(|| FrameError::TypeMismatch {
                        expected: "numeric".into(),
                        found: v.dtype().to_string(),
                    })?;
                    acc += f;
                    n += 1;
                }
                if n == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(acc / n as f64))
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let mut best: Option<&Value> = None;
                for v in values {
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            let take = if *self == AggFunc::Min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            };
                            if take {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                Ok(best.cloned().unwrap_or(Value::Null))
            }
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountDistinct => f.write_str("COUNT DISTINCT"),
            other => f.write_str(other.sql_name()),
        }
    }
}

/// One output column of a group-by: `func(column) AS alias`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The input column; `None` means `COUNT(*)`.
    pub column: Option<String>,
    /// Name of the output column.
    pub alias: String,
}

impl AggExpr {
    /// `func(column) AS alias`.
    pub fn new(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            func,
            column: Some(column.into()),
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Count,
            column: None,
            alias: alias.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[Value]) -> Vec<&Value> {
        v.iter().collect()
    }

    #[test]
    fn sum_stays_int_for_ints() {
        let v = [Value::Int(1), Value::Int(2), Value::Null];
        assert_eq!(AggFunc::Sum.apply(&vals(&v)).unwrap(), Value::Int(3));
    }

    #[test]
    fn sum_promotes_to_float() {
        let v = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(AggFunc::Sum.apply(&vals(&v)).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn avg_ignores_nulls() {
        let v = [Value::Int(2), Value::Null, Value::Int(4)];
        assert_eq!(AggFunc::Avg.apply(&vals(&v)).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn count_distinct() {
        let v = [Value::Int(1), Value::Int(1), Value::Int(2), Value::Null];
        assert_eq!(
            AggFunc::CountDistinct.apply(&vals(&v)).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn min_max_over_strings() {
        let v = [Value::Str("b".into()), Value::Str("a".into())];
        assert_eq!(
            AggFunc::Min.apply(&vals(&v)).unwrap(),
            Value::Str("a".into())
        );
        assert_eq!(
            AggFunc::Max.apply(&vals(&v)).unwrap(),
            Value::Str("b".into())
        );
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(AggFunc::Sum.apply(&[]).unwrap(), Value::Null);
        assert_eq!(AggFunc::Count.apply(&[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn sum_rejects_strings() {
        let v = [Value::Str("x".into())];
        assert!(AggFunc::Sum.apply(&vals(&v)).is_err());
    }
}
