//! Error type for the DataFrame engine.

use std::fmt;

/// Errors produced by DataFrame operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A duplicate column name was supplied where names must be unique.
    DuplicateColumn(String),
    /// An operation received a value of an incompatible type.
    TypeMismatch {
        /// What the operation expected (human readable).
        expected: String,
        /// What it actually found.
        found: String,
    },
    /// Column lengths (or row widths) disagree.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        found: usize,
    },
    /// CSV parsing or serialization failed.
    Csv(String),
    /// A date string could not be parsed.
    InvalidDate(String),
    /// Catch-all for invalid arguments.
    Invalid(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column name: {name}"),
            FrameError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            FrameError::LengthMismatch { expected, found } => {
                write!(f, "length mismatch: expected {expected}, found {found}")
            }
            FrameError::Csv(msg) => write!(f, "csv error: {msg}"),
            FrameError::InvalidDate(s) => write!(f, "invalid date: {s}"),
            FrameError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Convenience alias used throughout the frame crate.
pub type Result<T> = std::result::Result<T, FrameError>;
