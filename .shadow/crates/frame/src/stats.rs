//! Column statistics — the heuristics stage of DataLab's Data Profiling
//! fallback (paper §IV-C): per-column name, data type, basic statistics,
//! and a random-sample list.

use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Statistics for a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
    /// Number of null entries.
    pub null_count: usize,
    /// Number of distinct non-null values.
    pub distinct_count: usize,
    /// Minimum non-null value (by total order), if any.
    pub min: Option<Value>,
    /// Maximum non-null value, if any.
    pub max: Option<Value>,
    /// Mean, for numeric columns with at least one non-null value.
    pub mean: Option<f64>,
    /// Up to `sample_k` distinct example values (deterministic: first-seen).
    pub samples: Vec<Value>,
}

impl ColumnProfile {
    /// One-line human/LLM readable rendering used when building prompts.
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("{} ({})", self.name, self.dtype)];
        parts.push(format!("distinct={}", self.distinct_count));
        if self.null_count > 0 {
            parts.push(format!("nulls={}", self.null_count));
        }
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            parts.push(format!("range=[{} .. {}]", min.render(), max.render()));
        }
        if let Some(mean) = self.mean {
            parts.push(format!("mean={mean:.3}"));
        }
        if !self.samples.is_empty() {
            let s: Vec<String> = self.samples.iter().map(|v| v.render()).collect();
            parts.push(format!("samples=[{}]", s.join(", ")));
        }
        parts.join(", ")
    }
}

/// Whole-table profile: the structured summary fed to the LLM
/// interpretation stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// Number of rows profiled.
    pub n_rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Multi-line rendering for prompt construction.
    pub fn describe(&self) -> String {
        let mut s = format!("rows={}\n", self.n_rows);
        for c in &self.columns {
            s.push_str("- ");
            s.push_str(&c.describe());
            s.push('\n');
        }
        s
    }
}

/// Profiles every column of `df`, collecting up to `sample_k` distinct
/// sample values per column.
pub fn profile(df: &DataFrame, sample_k: usize) -> Result<TableProfile> {
    let mut columns = Vec::with_capacity(df.n_cols());
    for field in df.schema().fields() {
        let values = df.column(&field.name)?;
        let mut null_count = 0;
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut samples: Vec<Value> = Vec::new();
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut sum = 0.0f64;
        let mut n_num = 0usize;
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if distinct.insert(v) && samples.len() < sample_k {
                samples.push(v.clone());
            }
            min = Some(match min {
                None => v,
                Some(m) if v.total_cmp(m) == std::cmp::Ordering::Less => v,
                Some(m) => m,
            });
            max = Some(match max {
                None => v,
                Some(m) if v.total_cmp(m) == std::cmp::Ordering::Greater => v,
                Some(m) => m,
            });
            if let Some(f) = v.as_f64() {
                sum += f;
                n_num += 1;
            }
        }
        let mean = if field.dtype.is_numeric() && n_num > 0 {
            Some(sum / n_num as f64)
        } else {
            None
        };
        columns.push(ColumnProfile {
            name: field.name.clone(),
            dtype: field.dtype,
            null_count,
            distinct_count: distinct.len(),
            min: min.cloned(),
            max: max.cloned(),
            mean,
            samples,
        });
    }
    Ok(TableProfile {
        n_rows: df.n_rows(),
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_numeric_column() {
        let df = DataFrame::from_columns(vec![(
            "x",
            DataType::Int,
            vec![1.into(), 2.into(), 2.into(), Value::Null],
        )])
        .unwrap();
        let p = profile(&df, 2).unwrap();
        let c = &p.columns[0];
        assert_eq!(c.null_count, 1);
        assert_eq!(c.distinct_count, 2);
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(2)));
        assert!((c.mean.unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.samples.len(), 2);
    }

    #[test]
    fn profiles_string_column_without_mean() {
        let df = DataFrame::from_columns(vec![("s", DataType::Str, vec!["b".into(), "a".into()])])
            .unwrap();
        let p = profile(&df, 5).unwrap();
        assert_eq!(p.columns[0].mean, None);
        assert_eq!(p.columns[0].min, Some(Value::Str("a".into())));
        assert!(p.columns[0].describe().contains("samples="));
    }

    #[test]
    fn empty_column_profile() {
        let df = DataFrame::from_columns(vec![("x", DataType::Int, vec![])]).unwrap();
        let p = profile(&df, 3).unwrap();
        assert_eq!(p.columns[0].min, None);
        assert_eq!(p.columns[0].mean, None);
        assert_eq!(p.n_rows, 0);
    }
}
