//! # datalab-frame
//!
//! Columnar in-memory DataFrame engine — the data substrate every other
//! DataLab crate builds on. It provides:
//!
//! - dynamically-typed scalar [`Value`]s with a total order and
//!   hashability (so group-by and joins work over mixed data),
//! - [`Schema`]/[`Field`] metadata with case-insensitive lookup,
//! - a column-major [`DataFrame`] with the relational operations BI
//!   workloads need (select/filter/sort/group-by/join/distinct/limit),
//! - aggregate functions ([`AggFunc`], [`AggExpr`]),
//! - CSV import/export with type inference ([`csv`]),
//! - column statistics for DataLab's data-profiling fallback ([`stats`]).

#![warn(missing_docs)]

pub mod agg;
pub mod csv;
pub mod error;
pub mod frame;
pub mod schema;
pub mod stats;
pub mod value;

pub use agg::{AggExpr, AggFunc};
pub use error::{FrameError, Result};
pub use frame::{DataFrame, JoinKind};
pub use schema::{Field, Schema};
pub use stats::{profile, ColumnProfile, TableProfile};
pub use value::{DataType, Date, Value};
