//! Renderers from a [`QueryIntent`] to the artifact languages DataLab
//! agents produce: SQL text, DSL JSON, dscript pipelines, and chart-spec
//! JSON. The JSON shapes are the cross-crate contracts; the knowledge and
//! viz crates deserialize them into their own typed structures.

use crate::intent::{ColumnRef, Evidence, Filter, FilterValue, Measure, QueryIntent};
use datalab_frame::AggFunc;
use serde_json::{json, Value as Json};

/// Output alias for a measure: `sum_amount`, `cnt`, ...
pub fn measure_alias(m: &Measure) -> String {
    match (&m.column, m.agg) {
        (None, _) => "cnt".to_string(),
        (Some(c), agg) => format!(
            "{}_{}",
            match agg {
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Count => "cnt",
                AggFunc::CountDistinct => "cntd",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            },
            c.column.to_lowercase()
        ),
    }
}

fn agg_name(agg: AggFunc) -> &'static str {
    match agg {
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Count => "count",
        AggFunc::CountDistinct => "count_distinct",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn sql_quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn filter_sql(f: &Filter, qualify: bool) -> String {
    let col = if qualify {
        format!("{}.{}", f.column.table, f.column.column)
    } else {
        f.column.column.clone()
    };
    match &f.value {
        FilterValue::Num(n) => {
            let num = if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            };
            format!("{col} {} {num}", f.op)
        }
        FilterValue::Str(s) => format!("{col} = {}", sql_quote(s)),
        FilterValue::DateRange(a, b) => {
            if b == "9999-12-31" {
                format!("{col} >= {}", sql_quote(a))
            } else {
                format!("{col} BETWEEN {} AND {}", sql_quote(a), sql_quote(b))
            }
        }
    }
}

/// Renders the intent as a SQL query against the evidence's schema,
/// following FK join paths when the intent spans multiple tables.
pub fn to_sql(intent: &QueryIntent, ev: &Evidence) -> String {
    let tables = intent.tables();
    if tables.is_empty() {
        return "SELECT 1".to_string();
    }
    let base = &tables[0];
    let multi = tables.len() > 1;
    let qual = |c: &ColumnRef| {
        if multi {
            format!("{}.{}", c.table, c.column)
        } else {
            c.column.clone()
        }
    };

    let mut select_items: Vec<String> = Vec::new();
    for d in &intent.dimensions {
        select_items.push(qual(d));
    }
    for m in &intent.measures {
        let alias = measure_alias(m);
        let inner = match (&m.derived_expr, &m.column) {
            (Some(expr), _) => expr.clone(),
            (None, Some(c)) => qual(c),
            (None, None) => "*".to_string(),
        };
        let rendered = if m.agg == AggFunc::CountDistinct {
            format!("COUNT(DISTINCT {inner}) AS {alias}")
        } else {
            format!("{}({inner}) AS {alias}", m.agg.sql_name())
        };
        select_items.push(rendered);
    }
    for p in &intent.projections {
        select_items.push(qual(p));
    }
    if select_items.is_empty() {
        select_items.push("*".to_string());
    }

    let mut sql = format!("SELECT {} FROM {base}", select_items.join(", "));
    // Join path: chain every other table through declared FKs.
    for t in tables.iter().skip(1) {
        if let Some(path) = ev.join_path(base, t) {
            for (l, r) in path {
                sql.push_str(&format!(
                    " JOIN {} ON {}.{} = {}.{}",
                    r.table, l.table, l.column, r.table, r.column
                ));
            }
        }
    }
    if !intent.filters.is_empty() {
        let conds: Vec<String> = intent
            .filters
            .iter()
            .map(|f| filter_sql(f, multi))
            .collect();
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    if !intent.measures.is_empty() && !intent.dimensions.is_empty() {
        let dims: Vec<String> = intent.dimensions.iter().map(&qual).collect();
        sql.push_str(&format!(" GROUP BY {}", dims.join(", ")));
    }
    if let Some(desc) = intent.order_desc {
        if let Some(m) = intent.measures.first() {
            sql.push_str(&format!(
                " ORDER BY {}{}",
                measure_alias(m),
                if desc { " DESC" } else { "" }
            ));
        }
    }
    if let Some(n) = intent.limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    sql
}

/// Renders the intent as DataLab's DSL specification JSON
/// (`MeasureList` / `DimensionList` / `ConditionList`, §IV-C).
pub fn to_dsl_json(intent: &QueryIntent) -> Json {
    let measures: Vec<Json> = intent
        .measures
        .iter()
        .map(|m| {
            json!({
                "table": m.column.as_ref().map(|c| c.table.clone()),
                "column": m.column.as_ref().map(|c| c.column.clone()),
                "aggregate": agg_name(m.agg),
                "expr": m.derived_expr,
                "alias": measure_alias(m),
            })
        })
        .collect();
    let dims: Vec<Json> = intent
        .dimensions
        .iter()
        .map(|d| json!({"table": d.table, "column": d.column}))
        .collect();
    let conds: Vec<Json> = intent
        .filters
        .iter()
        .map(|f| {
            let value = match &f.value {
                FilterValue::Num(n) => json!(n),
                FilterValue::Str(s) => json!(s),
                FilterValue::DateRange(a, b) => json!([a, b]),
            };
            json!({
                "table": f.column.table,
                "column": f.column.column,
                "op": if matches!(f.value, FilterValue::DateRange(..)) { "between" } else { f.op.as_str() },
                "value": value,
            })
        })
        .collect();
    let projections: Vec<Json> = intent
        .projections
        .iter()
        .map(|p| json!({"table": p.table, "column": p.column}))
        .collect();
    json!({
        "MeasureList": measures,
        "DimensionList": dims,
        "ConditionList": conds,
        "ProjectionList": projections,
        "OrderBy": intent.order_desc.map(|d| json!({"target": "measure", "desc": d})),
        "Limit": intent.limit,
        "Chart": intent.chart_hint,
        "Clean": if intent.dropna { json!(true) } else { json!(null) },
    })
}

/// Renders the intent as a dscript pipeline — the executable program the
/// code agent submits to the sandbox.
pub fn to_dscript(intent: &QueryIntent) -> String {
    let tables = intent.tables();
    let base = tables
        .first()
        .cloned()
        .unwrap_or_else(|| "data".to_string());
    let mut lines = vec![format!("load {base}")];
    if intent.dropna {
        lines.push("dropna".to_string());
    }
    for f in &intent.filters {
        let cond = match &f.value {
            FilterValue::Num(n) => {
                let num = if n.fract() == 0.0 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                };
                format!("{} {} {num}", f.column.column, f.op)
            }
            FilterValue::Str(s) => format!("{} == '{}'", f.column.column, s),
            FilterValue::DateRange(a, b) => {
                if b == "9999-12-31" {
                    format!("{} >= '{a}'", f.column.column)
                } else {
                    format!("{} between '{a}' '{b}'", f.column.column)
                }
            }
        };
        lines.push(format!("filter {cond}"));
    }
    for m in &intent.measures {
        if let (Some(expr), Some(c)) = (&m.derived_expr, &m.column) {
            lines.push(format!("derive {} = {}", c.column, expr));
        }
    }
    if !intent.measures.is_empty() {
        let aggs: Vec<String> = intent
            .measures
            .iter()
            .map(|m| {
                let col = m
                    .column
                    .as_ref()
                    .map(|c| c.column.clone())
                    .unwrap_or_else(|| "*".into());
                format!("{}({col}) as {}", agg_name(m.agg), measure_alias(m))
            })
            .collect();
        let dims: Vec<String> = intent.dimensions.iter().map(|d| d.column.clone()).collect();
        lines.push(format!("groupby {}: {}", dims.join(", "), aggs.join(", ")));
    } else if !intent.projections.is_empty() {
        let cols: Vec<String> = intent
            .projections
            .iter()
            .map(|p| p.column.clone())
            .collect();
        lines.push(format!("select {}", cols.join(", ")));
    }
    if let Some(desc) = intent.order_desc {
        if let Some(m) = intent.measures.first() {
            lines.push(format!(
                "sort {}{}",
                measure_alias(m),
                if desc { " desc" } else { "" }
            ));
        }
    }
    if let Some(n) = intent.limit {
        lines.push(format!("limit {n}"));
    }
    lines.join("\n")
}

/// Renders the intent as a chart-spec JSON understood by `datalab-viz`.
pub fn to_vis_json(intent: &QueryIntent) -> Json {
    let mark = intent
        .chart_hint
        .clone()
        .unwrap_or_else(|| "bar".to_string());
    let x = intent.dimensions.first().map(|d| d.column.clone());
    let (y_field, y_agg) = match intent.measures.first() {
        Some(m) => (
            m.column.as_ref().map(|c| c.column.clone()),
            Some(agg_name(m.agg).to_string()),
        ),
        None => (intent.projections.get(1).map(|p| p.column.clone()), None),
    };
    let table = intent.tables().first().cloned().unwrap_or_default();
    let filters: Vec<Json> = intent
        .filters
        .iter()
        .map(|f| {
            let value = match &f.value {
                FilterValue::Num(n) => json!(n),
                FilterValue::Str(s) => json!(s),
                FilterValue::DateRange(a, b) => json!([a, b]),
            };
            json!({"column": f.column.column, "op": if matches!(f.value, FilterValue::DateRange(..)) {"between"} else {f.op.as_str()}, "value": value})
        })
        .collect();
    json!({
        "mark": mark,
        "data": table,
        "x": x.map(|f| json!({"field": f})),
        "y": y_field.map(|f| json!({"field": f, "aggregate": y_agg})),
        "filters": filters,
        "limit": intent.limit,
        "sort_desc": intent.order_desc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::infer_intent;

    fn evidence() -> Evidence {
        let mut ev = Evidence::from_schema(
            "table sales: region (str), amount (int), ftime (date), cost (float)\n\
             table users: id (int), city (str)\n\
             fk sales.region = users.city\n",
        );
        ev.absorb_knowledge("derived sales.profit = amount - cost\n");
        ev
    }

    #[test]
    fn sql_generation_single_table() {
        let ev = evidence();
        let intent = infer_intent("total amount by region", &ev);
        let sql = to_sql(&intent, &ev);
        assert_eq!(
            sql,
            "SELECT region, SUM(amount) AS sum_amount FROM sales GROUP BY region"
        );
    }

    #[test]
    fn sql_generation_with_filters_order_limit() {
        let ev = evidence();
        let intent = infer_intent(
            "top 2 regions by total amount with cost greater than 5",
            &ev,
        );
        let sql = to_sql(&intent, &ev);
        assert!(sql.contains("WHERE cost > 5"), "{sql}");
        assert!(sql.contains("ORDER BY sum_amount DESC"), "{sql}");
        assert!(sql.ends_with("LIMIT 2"), "{sql}");
    }

    #[test]
    fn sql_derived_measure() {
        let ev = evidence();
        let intent = infer_intent("total profit by region", &ev);
        let sql = to_sql(&intent, &ev);
        assert!(sql.contains("SUM(amount - cost) AS sum_profit"), "{sql}");
    }

    #[test]
    fn sql_join_across_tables() {
        let ev = evidence();
        let mut intent = infer_intent("total amount by region", &ev);
        intent.dimensions = vec![ColumnRef::new("users", "city")];
        let sql = to_sql(&intent, &ev);
        assert!(
            sql.contains("JOIN users ON sales.region = users.city"),
            "{sql}"
        );
        assert!(sql.contains("GROUP BY users.city"), "{sql}");
    }

    #[test]
    fn dsl_json_shape() {
        let ev = evidence();
        let intent = infer_intent("average amount by region in 2023", &ev);
        let dsl = to_dsl_json(&intent);
        assert_eq!(dsl["MeasureList"][0]["aggregate"], "avg");
        assert_eq!(dsl["DimensionList"][0]["column"], "region");
        assert_eq!(dsl["ConditionList"][0]["op"], "between");
    }

    #[test]
    fn dscript_pipeline() {
        let ev = evidence();
        let intent = infer_intent(
            "top 3 regions by total amount with cost greater than 10",
            &ev,
        );
        let ds = to_dscript(&intent);
        let lines: Vec<&str> = ds.lines().collect();
        assert_eq!(lines[0], "load sales");
        assert!(
            lines.iter().any(|l| l.starts_with("filter cost > 10")),
            "{ds}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("groupby region: sum(amount)")),
            "{ds}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("sort sum_amount desc")),
            "{ds}"
        );
        assert_eq!(*lines.last().unwrap(), "limit 3");
    }

    #[test]
    fn vis_json_shape() {
        let ev = evidence();
        let intent = infer_intent("bar chart of total amount by region", &ev);
        let v = to_vis_json(&intent);
        assert_eq!(v["mark"], "bar");
        assert_eq!(v["x"]["field"], "region");
        assert_eq!(v["y"]["field"], "amount");
        assert_eq!(v["y"]["aggregate"], "sum");
        assert_eq!(v["data"], "sales");
    }
}
