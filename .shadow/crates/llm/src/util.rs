//! Deterministic hashing and text utilities shared across the simulated
//! model's solvers.

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv1a::new().update(bytes).finish()
}

/// Incremental FNV-1a 64-bit hasher: feeding slices one at a time yields
/// the same hash as [`fnv1a`] over their concatenation, so hot paths can
/// hash tagged multi-part features without building an intermediate
/// `String`/`Vec` first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash, returning the advanced hasher.
    #[inline]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds one character's UTF-8 encoding into the hash without
    /// allocating (equivalent to updating with the char's UTF-8 bytes).
    #[inline]
    pub fn update_char(self, c: char) -> Self {
        let mut buf = [0u8; 4];
        self.update(c.encode_utf8(&mut buf).as_bytes())
    }

    /// The hash value.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Deterministic pseudo-random number in `[0, 1)` derived from a string.
/// FNV-1a alone has weak avalanche in its high bits for strings that
/// differ only near the end (a retry counter, say), so the hash is run
/// through a splitmix64-style finaliser first.
pub fn hash01(s: &str) -> f64 {
    let mut z = fnv1a(s.as_bytes());
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Lower-cases and splits text into alphanumeric word tokens.
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits an identifier like `prod_class4_name` or `orderAmount` into its
/// lower-cased word parts.
pub fn split_ident(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' || c == ' ' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        // camelCase boundary
        if c.is_uppercase() && i > 0 && chars[i - 1].is_lowercase() && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Crude English singularisation used for matching plurals in questions
/// against singular column names ("orders" → "order").
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() > 4 && w.ends_with("ies") {
        format!("{}y", &w[..w.len() - 3])
    } else if w.len() > 3 && (w.ends_with("ses") || w.ends_with("xes") || w.ends_with("hes")) {
        w[..w.len() - 2].to_string()
    } else if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") {
        w[..w.len() - 1].to_string()
    } else {
        w
    }
}

/// Token-overlap similarity in `[0, 1]` between two token sets (Dice
/// coefficient over stemmed tokens).
pub fn token_overlap(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<String> = a.iter().map(|w| stem(w)).collect();
    let sb: std::collections::HashSet<String> = b.iter().map(|w| stem(w)).collect();
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_fnv1a_matches_one_shot() {
        let one_shot = fnv1a(b"w:revenue");
        let streamed = Fnv1a::new().update(b"w:").update(b"revenue").finish();
        assert_eq!(one_shot, streamed);
        // Char-wise feeding matches hashing the string's UTF-8 bytes,
        // multi-byte characters included.
        let text = "t:rvé";
        let mut h = Fnv1a::new();
        for c in text.chars() {
            h = h.update_char(c);
        }
        assert_eq!(h.finish(), fnv1a(text.as_bytes()));
        assert_eq!(Fnv1a::default().finish(), fnv1a(b""));
    }

    #[test]
    fn hash01_is_deterministic_and_bounded() {
        let a = hash01("hello");
        assert_eq!(a, hash01("hello"));
        assert!((0.0..1.0).contains(&a));
        assert_ne!(hash01("hello"), hash01("world"));
    }

    #[test]
    fn split_ident_handles_styles() {
        assert_eq!(
            split_ident("prod_class4_name"),
            vec!["prod", "class4", "name"]
        );
        assert_eq!(split_ident("orderAmount"), vec!["order", "amount"]);
        assert_eq!(split_ident("ftime"), vec!["ftime"]);
    }

    #[test]
    fn stem_plurals() {
        assert_eq!(stem("orders"), "order");
        assert_eq!(stem("categories"), "category");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("status"), "statu"); // crude but consistent both sides
    }

    #[test]
    fn overlap_symmetric() {
        let a = words("total sales by region");
        let b = words("region sales");
        let ab = token_overlap(&a, &b);
        let ba = token_overlap(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.5);
        assert_eq!(token_overlap(&a, &[]), 0.0);
    }
}
