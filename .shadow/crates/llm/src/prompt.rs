//! Structured prompt assembly and parsing.
//!
//! All DataLab components build prompts through [`Prompt`], which renders
//! to plain text with `#TASK` / `#SECTION` markers. The simulated model
//! parses the same convention back out. This keeps the model interface
//! honest (text in, text out) while letting both sides agree on structure,
//! the way real systems agree on prompt templates.

use std::collections::BTreeMap;

/// A structured prompt: a task label plus named sections.
#[derive(Debug, Clone, Default)]
pub struct Prompt {
    task: String,
    sections: Vec<(String, String)>,
}

impl Prompt {
    /// Starts a prompt for the given task label (e.g. `nl2sql`).
    pub fn new(task: impl Into<String>) -> Self {
        Prompt {
            task: task.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a named section (builder style).
    pub fn section(mut self, name: impl Into<String>, content: impl Into<String>) -> Self {
        self.sections.push((name.into(), content.into()));
        self
    }

    /// The task label.
    pub fn task(&self) -> &str {
        &self.task
    }

    /// Renders to the on-the-wire text form.
    pub fn render(&self) -> String {
        let mut out = format!("#TASK {}\n", self.task);
        for (name, content) in &self.sections {
            out.push_str("#SECTION ");
            out.push_str(name);
            out.push('\n');
            out.push_str(content);
            if !content.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// The parsed view of a rendered prompt.
#[derive(Debug, Clone, Default)]
pub struct ParsedPrompt {
    /// The `#TASK` label (empty when absent).
    pub task: String,
    /// Section name → content. Duplicate names are concatenated.
    pub sections: BTreeMap<String, String>,
}

impl ParsedPrompt {
    /// Section content, or empty string.
    pub fn section(&self, name: &str) -> &str {
        self.sections.get(name).map(String::as_str).unwrap_or("")
    }

    /// Whether a non-empty section is present.
    pub fn has(&self, name: &str) -> bool {
        self.sections
            .get(name)
            .map(|s| !s.trim().is_empty())
            .unwrap_or(false)
    }
}

/// Parses rendered prompt text back into task and sections. Text before
/// the first marker goes into an implicit `preamble` section, so free-form
/// prompts (the pure-NL ablation) still parse.
pub fn parse_prompt(text: &str) -> ParsedPrompt {
    let mut parsed = ParsedPrompt::default();
    let mut current = "preamble".to_string();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("#TASK ") {
            parsed.task = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("#SECTION ") {
            current = rest.trim().to_string();
        } else {
            let entry = parsed.sections.entry(current.clone()).or_default();
            entry.push_str(line);
            entry.push('\n');
        }
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Prompt::new("nl2sql")
            .section("schema", "table t: a (int)")
            .section("question", "how many rows?");
        let parsed = parse_prompt(&p.render());
        assert_eq!(parsed.task, "nl2sql");
        assert_eq!(parsed.section("schema").trim(), "table t: a (int)");
        assert_eq!(parsed.section("question").trim(), "how many rows?");
        assert!(parsed.has("schema"));
        assert!(!parsed.has("knowledge"));
    }

    #[test]
    fn free_text_lands_in_preamble() {
        let parsed = parse_prompt("just some chat\nsecond line");
        assert!(parsed.section("preamble").contains("second line"));
        assert_eq!(parsed.task, "");
    }

    #[test]
    fn duplicate_sections_concatenate() {
        let text = "#SECTION k\na\n#SECTION k\nb\n";
        let parsed = parse_prompt(text);
        assert_eq!(parsed.section("k"), "a\nb\n");
    }
}
