//! # datalab-llm
//!
//! The language-model substrate for the DataLab reproduction:
//!
//! - [`LanguageModel`] — the text-in/text-out endpoint trait,
//! - [`SimLlm`] — a deterministic simulated model with per-skill
//!   [`ModelProfile`]s (GPT-4 / Qwen-2.5 / LLaMA-3.1) and a seeded
//!   characteristic-error model (see DESIGN.md "Substitutions"),
//! - [`Prompt`] — structured prompt assembly shared by all agents,
//! - [`HashEmbedder`] — deterministic text embeddings,
//! - [`TokenMeter`] — prompt/completion token accounting (Table IV),
//! - [`intent`] / [`generate`] — the model's internal NL-understanding and
//!   artifact-generation machinery (exposed for tests and ablations),
//! - [`transport`] — the fallible transport layer: the [`LlmError`]
//!   taxonomy, [`ChaosLlm`] fault injection, and the [`ResilientLlm`]
//!   retry + circuit-breaker wrapper.

#![warn(missing_docs)]

pub mod embed;
pub mod generate;
pub mod intent;
pub mod model;
pub mod profile;
pub mod prompt;
pub mod tokens;
pub mod transport;
pub mod util;

pub use embed::{cosine, text_similarity, HashEmbedder, EMBED_DIM};
pub use model::{classify_task, plan, plan_with_parts, LanguageModel, SimLlm};
pub use profile::ModelProfile;
pub use prompt::{parse_prompt, ParsedPrompt, Prompt};
pub use tokens::{count_tokens, TokenMeter};
pub use transport::{
    BreakerConfig, BreakerState, ChaosConfig, ChaosLlm, CircuitBreaker, LlmError, ResilientLlm,
    RetryPolicy,
};
