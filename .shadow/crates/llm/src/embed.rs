//! Deterministic text embeddings.
//!
//! Substitutes the paper's M3-Embedding model with a feature-hashing
//! embedder: word unigrams and character trigrams are hashed into a fixed
//! number of buckets and L2-normalised. Texts sharing vocabulary embed
//! close together, which is the property the knowledge-retrieval and
//! context-retrieval modules rely on.

use crate::util::{stem, words, Fnv1a};

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 256;

/// Feature-hash embedder. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashEmbedder;

impl HashEmbedder {
    /// A new embedder.
    pub fn new() -> Self {
        HashEmbedder
    }

    /// Embeds text into a unit-length vector (all-zero for empty text).
    ///
    /// Features are hashed as tagged byte streams (`w:` + word, `t:` +
    /// trigram) fed straight into the incremental hasher, so the hot loop
    /// performs no per-feature `String` allocation; the hashes — and
    /// therefore the vectors — are identical to the former
    /// `format!("w:{s}")` formulation.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; EMBED_DIM];
        for w in words(text) {
            let s = stem(&w);
            bump(
                &mut v,
                Fnv1a::new().update(b"w:").update(s.as_bytes()).finish(),
                1.0,
            );
            // Character trigrams give partial-match signal for compound
            // identifiers and typos. A rolling three-char window stands in
            // for collecting the chars into a Vec.
            let mut win = ['\0'; 3];
            let mut filled = 0usize;
            for c in s.chars() {
                if filled < 3 {
                    win[filled] = c;
                    filled += 1;
                } else {
                    win[0] = win[1];
                    win[1] = win[2];
                    win[2] = c;
                }
                if filled == 3 {
                    let h = win
                        .iter()
                        .fold(Fnv1a::new().update(b"t:"), |h, &c| h.update_char(c));
                    bump(&mut v, h.finish(), 0.35);
                }
            }
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

fn bump(v: &mut [f32], h: u64, weight: f32) {
    let idx = (h % EMBED_DIM as u64) as usize;
    // Sign-hashing reduces collision bias.
    let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
    v[idx] += sign * weight;
}

/// Cosine similarity of two vectors (0.0 when either is all-zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += (*x as f64) * (*y as f64);
        na += (*x as f64) * (*x as f64);
        nb += (*y as f64) * (*y as f64);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Convenience: cosine similarity of two texts.
pub fn text_similarity(a: &str, b: &str) -> f64 {
    let e = HashEmbedder::new();
    cosine(&e.embed(a), &e.embed(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-optimisation embedding: per-feature `format!` strings
    /// hashed whole. Kept as the reference the allocation-free path must
    /// match bit for bit (and as the baseline of the `fleet_parallel`
    /// micro-bench).
    fn embed_format_reference(text: &str) -> Vec<f32> {
        fn bump_str(v: &mut [f32], feature: &str, weight: f32) {
            bump(v, crate::util::fnv1a(feature.as_bytes()), weight);
        }
        let mut v = vec![0.0f32; EMBED_DIM];
        for w in words(text) {
            let s = stem(&w);
            bump_str(&mut v, &format!("w:{s}"), 1.0);
            let chars: Vec<char> = s.chars().collect();
            if chars.len() >= 3 {
                for win in chars.windows(3) {
                    let tri: String = win.iter().collect();
                    bump_str(&mut v, &format!("t:{tri}"), 0.35);
                }
            }
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    #[test]
    fn allocation_free_path_matches_format_reference() {
        let e = HashEmbedder::new();
        for text in [
            "",
            "ab",
            "abc",
            "total revenue by region",
            "shouldincome_after tax rollup for finance",
            "café naïve résumé", // multi-byte chars in trigrams
            "a bb ccc dddd eeeee",
        ] {
            assert_eq!(e.embed(text), embed_format_reference(text), "{text:?}");
        }
    }

    #[test]
    fn identical_texts_embed_identically() {
        assert!(
            (text_similarity("total revenue by region", "total revenue by region") - 1.0).abs()
                < 1e-6
        );
    }

    #[test]
    fn related_beats_unrelated() {
        let related = text_similarity("monthly revenue of each product", "revenue per product");
        let unrelated =
            text_similarity("monthly revenue of each product", "giraffe habitat zoology");
        assert!(
            related > unrelated + 0.2,
            "related={related} unrelated={unrelated}"
        );
    }

    #[test]
    fn plural_forms_match() {
        let sim = text_similarity("orders", "order");
        assert!(sim > 0.9, "sim={sim}");
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = HashEmbedder::new();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn embeddings_are_unit_length() {
        let e = HashEmbedder::new();
        let v = e.embed("some nontrivial business text");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }
}
