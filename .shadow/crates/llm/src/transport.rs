//! Fallible model transport: fault taxonomy, deterministic chaos
//! injection, and a resilient wrapper with retries and a circuit breaker.
//!
//! The rest of the stack talks to a [`LanguageModel`], whose
//! `complete(&str) -> String` cannot fail. Real backends do fail — the
//! serving literature (Clipper, AlpaServe) treats backend faults and
//! latency spikes as first-class — so this module adds a fallible call
//! surface (`try_complete`, defaulted to infallible on the trait) plus
//! two decorators:
//!
//! - [`ChaosLlm`] injects faults from the [`LlmError`] taxonomy,
//!   deterministically from a seed, per-fault rates, and a per-instance
//!   call counter. With all rates at zero it is a bit-identical
//!   passthrough.
//! - [`ResilientLlm`] turns a flaky inner transport back into a mostly
//!   reliable one: bounded retries with deterministic exponential
//!   backoff + jitter, a per-call deadline budget, and a
//!   closed/open/half-open [`CircuitBreaker`]. Everything it observes is
//!   exported as `llm.faults.*` / `llm.breaker.*` counters, a
//!   breaker-state gauge, and flight-recorder events.
//!
//! Determinism note: fault decisions hash `(seed, call index, prompt)`.
//! The call counter is per-instance, and the platform builds one chaos
//! stack per session, so a session replays the same fault sequence
//! whether the fleet runs serially or sharded across workers. The
//! breaker's open→half-open transition is likewise counted in *rejected
//! calls*, not wall-clock time, so chaos runs are reproducible.

use crate::model::LanguageModel;
use crate::tokens::TokenMeter;
use crate::util::{fnv1a, hash01};
use datalab_telemetry::{EventKind, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every `llm.faults.*` / `llm.breaker.*` counter the resilient transport
/// maintains, for pre-registration at zero (so exports show the full
/// taxonomy even before the first fault).
pub const FAULT_COUNTERS: &[&str] = &[
    "llm.faults.transport",
    "llm.faults.timeout",
    "llm.faults.truncated",
    "llm.faults.garbage",
    "llm.faults.retries",
    "llm.faults.recovered",
    "llm.faults.exhausted",
    "llm.breaker.trips",
    "llm.breaker.rejected",
];

/// The gauge holding the circuit breaker's current state
/// (0 = closed, 1 = open, 2 = half-open).
pub const BREAKER_STATE_GAUGE: &str = "llm.breaker.state";

/// What went wrong with one model call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// Transient transport failure — the request never produced a
    /// response (connection reset, DNS, TLS).
    Transport(String),
    /// The call blew its latency budget (a simulated latency spike).
    Timeout {
        /// How long the call notionally waited before giving up.
        waited_ms: u64,
    },
    /// The response arrived cut off mid-stream; carries the partial text.
    Truncated(String),
    /// The response is format noise; carries the junk text.
    Garbage(String),
    /// The circuit breaker is open — the call was not attempted.
    BreakerOpen,
    /// The retry budget ran out; carries the final underlying error.
    RetriesExhausted {
        /// Total attempts made (initial call + retries).
        attempts: u32,
        /// The error from the last attempt.
        last: Box<LlmError>,
    },
}

impl LlmError {
    /// Stable snake_case taxonomy key (also the `llm.faults.*` counter
    /// suffix for the four injectable kinds).
    pub fn kind(&self) -> &'static str {
        match self {
            LlmError::Transport(_) => "transport",
            LlmError::Timeout { .. } => "timeout",
            LlmError::Truncated(_) => "truncated",
            LlmError::Garbage(_) => "garbage",
            LlmError::BreakerOpen => "breaker_open",
            LlmError::RetriesExhausted { .. } => "retries_exhausted",
        }
    }

    /// True for per-attempt faults a retry can plausibly fix; false for
    /// the terminal outcomes (`BreakerOpen`, `RetriesExhausted`).
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            LlmError::BreakerOpen | LlmError::RetriesExhausted { .. }
        )
    }

    /// What an infallible caller would have seen: the corrupt payload for
    /// truncation/garbage faults, a sentinel marker otherwise. This is
    /// exactly the garbage-propagation failure mode the resilient path
    /// exists to prevent.
    pub fn into_poison(self) -> String {
        match self {
            LlmError::Truncated(partial) => partial,
            LlmError::Garbage(junk) => junk,
            other => format!("<<llm-error:{}>>", other.kind()),
        }
    }
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::Transport(msg) => write!(f, "transport error: {msg}"),
            LlmError::Timeout { waited_ms } => write!(f, "timed out after {waited_ms}ms"),
            LlmError::Truncated(partial) => {
                write!(f, "truncated output ({} bytes received)", partial.len())
            }
            LlmError::Garbage(_) => write!(f, "garbage output"),
            LlmError::BreakerOpen => write!(f, "circuit breaker open"),
            LlmError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for LlmError {}

/// Per-fault injection rates plus the seed the fault stream derives from.
/// All rates are probabilities in `[0, 1]`; they select disjoint slices
/// of one uniform roll, so the total fault probability is their sum.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed feeding the deterministic fault stream.
    pub seed: u64,
    /// Probability of a transient transport error (no backend call).
    pub transport_rate: f64,
    /// Probability of a timeout / latency spike (no backend call).
    pub timeout_rate: f64,
    /// Probability of a truncated response (backend call billed).
    pub truncate_rate: f64,
    /// Probability of a garbage response (backend call billed).
    pub garbage_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::disabled(7)
    }
}

impl ChaosConfig {
    /// No injected faults: a bit-identical passthrough.
    pub fn disabled(seed: u64) -> Self {
        ChaosConfig {
            seed,
            transport_rate: 0.0,
            timeout_rate: 0.0,
            truncate_rate: 0.0,
            garbage_rate: 0.0,
        }
    }

    /// A total fault probability of `rate`, split evenly across the four
    /// fault kinds. This is what the `--chaos-rate` flags construct.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let each = (rate.clamp(0.0, 1.0)) / 4.0;
        ChaosConfig {
            seed,
            transport_rate: each,
            timeout_rate: each,
            truncate_rate: each,
            garbage_rate: each,
        }
    }

    /// Sum of the per-fault rates: the probability any fault fires.
    pub fn total_rate(&self) -> f64 {
        self.transport_rate + self.timeout_rate + self.truncate_rate + self.garbage_rate
    }

    /// True when every rate is exactly zero (passthrough mode).
    pub fn is_zero(&self) -> bool {
        self.total_rate() == 0.0
    }
}

/// Decorator injecting [`LlmError`] faults into any [`LanguageModel`],
/// deterministically from the config seed, the per-instance call index,
/// and the prompt. With all rates at zero, `try_complete` is a
/// bit-identical passthrough (same completions, same token accounting,
/// no extra hashing).
#[derive(Debug)]
pub struct ChaosLlm<M> {
    inner: M,
    config: ChaosConfig,
    calls: AtomicU64,
}

impl<M: LanguageModel> ChaosLlm<M> {
    /// Wraps `inner` with the given fault rates.
    pub fn new(inner: M, config: ChaosConfig) -> Self {
        ChaosLlm {
            inner,
            config,
            calls: AtomicU64::new(0),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The injection config.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// How many calls this instance has seen (fault decisions key on it).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<M: LanguageModel> LanguageModel for ChaosLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn meter(&self) -> Option<&TokenMeter> {
        self.inner.meter()
    }

    /// Infallible view: faults collapse into their poisoned payloads (the
    /// behaviour an unprotected caller would experience). Resilient
    /// callers use [`LanguageModel::try_complete`] instead.
    fn complete(&self, prompt: &str) -> String {
        self.try_complete(prompt)
            .unwrap_or_else(LlmError::into_poison)
    }

    fn try_complete(&self, prompt: &str) -> Result<String, LlmError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.config.is_zero() {
            return Ok(self.inner.complete(prompt));
        }
        let c = &self.config;
        let roll = hash01(&format!("chaos|{}|{}|{}", c.seed, call, prompt));
        let transport_at = c.transport_rate;
        let timeout_at = transport_at + c.timeout_rate;
        let truncate_at = timeout_at + c.truncate_rate;
        let garbage_at = truncate_at + c.garbage_rate;
        if roll < transport_at {
            return Err(LlmError::Transport(format!(
                "connection reset by peer (injected, call #{call})"
            )));
        }
        if roll < timeout_at {
            let waited_ms =
                1_000 + (hash01(&format!("latency|{}|{}", c.seed, call)) * 9_000.0) as u64;
            return Err(LlmError::Timeout { waited_ms });
        }
        if roll < truncate_at {
            // The backend produced (and billed) a full response; the
            // stream died partway through delivering it.
            let full = self.inner.complete(prompt);
            let mut cut = full.len() / 2;
            while cut > 0 && !full.is_char_boundary(cut) {
                cut -= 1;
            }
            return Err(LlmError::Truncated(full[..cut].to_string()));
        }
        if roll < garbage_at {
            // The backend billed the call but returned format noise.
            let _ = self.inner.complete(prompt);
            let junk = format!(
                "!!{{garbage:{:016x}}}",
                fnv1a(format!("garbage|{}|{}", c.seed, call).as_bytes())
            );
            return Err(LlmError::Garbage(junk));
        }
        Ok(self.inner.complete(prompt))
    }
}

/// Retry/backoff/deadline policy for [`ResilientLlm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// Base backoff before the first retry, doubled per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Per-call budget across all attempts and backoffs (exclusive:
    /// retrying requires elapsed + next backoff to stay strictly below
    /// it, so `0` disables retries entirely). When the budget is
    /// crossed the call gives up instead of sleeping.
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            deadline_ms: 10_000,
        }
    }
}

/// Circuit breaker thresholds for [`ResilientLlm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive inner-call failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Calls rejected while open before the breaker half-opens and
    /// admits a probe. Counted in calls, not wall-clock, so chaos runs
    /// stay deterministic.
    pub open_cooldown: u32,
    /// Consecutive probe successes required to close from half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: 4,
            half_open_probes: 2,
        }
    }
}

/// Circuit breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed = 0,
    /// Calls are rejected without touching the backend.
    Open = 1,
    /// Probe calls are admitted; successes close, a failure re-opens.
    HalfOpen = 2,
}

impl BreakerState {
    /// Stable lower-case name (`closed` / `open` / `half_open`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// The state encoded for the `llm.breaker.state` gauge.
    pub fn from_gauge(value: i64) -> BreakerState {
        match value {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }
}

#[derive(Debug, Default)]
struct BreakerInner {
    state_bits: u8,
    consecutive_failures: u32,
    rejected_while_open: u32,
    half_open_successes: u32,
    trips: u64,
}

impl BreakerInner {
    fn state(&self) -> BreakerState {
        match self.state_bits {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    fn set(&mut self, s: BreakerState) {
        self.state_bits = s as u8;
    }
}

/// Closed/open/half-open circuit breaker. Transitions are driven purely
/// by call outcomes and counts (no wall-clock), so breaker behaviour in a
/// deterministic chaos run is itself deterministic.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner::default()),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state()
    }

    /// Lifetime count of transitions into the open state.
    pub fn trips(&self) -> u64 {
        self.inner.lock().expect("breaker lock").trips
    }

    /// Gate for one call. `Err(())` means reject without calling the
    /// backend. `Ok(Some(transition))` admits the call as the half-open
    /// probe that ended a cooldown; `Ok(None)` admits it normally.
    #[allow(clippy::result_unit_err)]
    pub fn admit(&self) -> Result<Option<(BreakerState, BreakerState)>, ()> {
        let mut s = self.inner.lock().expect("breaker lock");
        match s.state() {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(None),
            BreakerState::Open => {
                s.rejected_while_open += 1;
                if s.rejected_while_open >= self.config.open_cooldown {
                    s.set(BreakerState::HalfOpen);
                    s.half_open_successes = 0;
                    Ok(Some((BreakerState::Open, BreakerState::HalfOpen)))
                } else {
                    Err(())
                }
            }
        }
    }

    /// Records a successful backend call; may close a half-open breaker.
    pub fn record_success(&self) -> Option<(BreakerState, BreakerState)> {
        let mut s = self.inner.lock().expect("breaker lock");
        match s.state() {
            BreakerState::Closed => {
                s.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                s.half_open_successes += 1;
                if s.half_open_successes >= self.config.half_open_probes {
                    s.set(BreakerState::Closed);
                    s.consecutive_failures = 0;
                    s.rejected_while_open = 0;
                    Some((BreakerState::HalfOpen, BreakerState::Closed))
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }

    /// Records a failed backend call; may trip the breaker open.
    pub fn record_failure(&self) -> Option<(BreakerState, BreakerState)> {
        let mut s = self.inner.lock().expect("breaker lock");
        match s.state() {
            BreakerState::Closed => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.config.failure_threshold {
                    s.set(BreakerState::Open);
                    s.trips += 1;
                    s.rejected_while_open = 0;
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                s.set(BreakerState::Open);
                s.trips += 1;
                s.rejected_while_open = 0;
                s.consecutive_failures = 0;
                Some((BreakerState::HalfOpen, BreakerState::Open))
            }
            BreakerState::Open => None,
        }
    }
}

/// Resilient wrapper over a fallible transport: bounded retries with
/// deterministic exponential backoff + jitter, a per-call deadline
/// budget, and a circuit breaker. Telemetry (when attached) receives
/// `llm.faults.*` / `llm.breaker.*` counters, the breaker-state gauge,
/// and `llm_fault` / `transport_retry` / `breaker_trip` events.
#[derive(Debug)]
pub struct ResilientLlm<M> {
    inner: M,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    telemetry: Mutex<Option<Telemetry>>,
}

impl<M: LanguageModel> ResilientLlm<M> {
    /// Wraps `inner` with the given retry policy and breaker thresholds.
    pub fn new(inner: M, retry: RetryPolicy, breaker: BreakerConfig) -> Self {
        ResilientLlm {
            inner,
            retry,
            breaker: CircuitBreaker::new(breaker),
            telemetry: Mutex::new(None),
        }
    }

    /// Attaches a telemetry pipeline and pre-registers the whole fault /
    /// breaker counter taxonomy at zero, so exports enumerate it even in
    /// fault-free runs.
    pub fn attach_telemetry(&self, telemetry: Telemetry) {
        let m = telemetry.metrics();
        for name in FAULT_COUNTERS {
            m.incr(name, 0);
        }
        m.gauge_set(BREAKER_STATE_GAUGE, self.breaker.state() as i64);
        *self.telemetry.lock().expect("telemetry slot") = Some(telemetry);
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The circuit breaker (state, trips).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The retry policy in force.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    fn telemetry(&self) -> Option<Telemetry> {
        self.telemetry.lock().expect("telemetry slot").clone()
    }

    /// Deterministic backoff before retry number `attempt + 1`:
    /// exponential with a cap, plus full jitter over the top half of the
    /// window, derived from the attempt number and the prompt hash.
    fn backoff_ms(&self, attempt: u32, prompt: &str) -> u64 {
        let cap = self.retry.max_backoff_ms.max(self.retry.base_backoff_ms);
        let exp = self
            .retry
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(cap);
        let jitter = hash01(&format!(
            "backoff|{attempt}|{:016x}",
            fnv1a(prompt.as_bytes())
        ));
        exp / 2 + (jitter * (exp / 2 + 1) as f64) as u64
    }

    fn note_transition(&self, t: &Option<Telemetry>, transition: (BreakerState, BreakerState)) {
        let (from, to) = transition;
        if let Some(t) = t {
            t.metrics().gauge_set(BREAKER_STATE_GAUGE, to as i64);
            if to == BreakerState::Open {
                t.metrics().incr("llm.breaker.trips", 1);
                t.record_event(
                    EventKind::BreakerTrip,
                    format!("{} -> {}", from.as_str(), to.as_str()),
                );
            }
        }
    }

    fn exhausted(&self, t: &Option<Telemetry>, attempts: u32, last: LlmError) -> LlmError {
        if let Some(t) = t {
            t.metrics().incr("llm.faults.exhausted", 1);
        }
        LlmError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        }
    }
}

impl<M: LanguageModel> LanguageModel for ResilientLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn meter(&self) -> Option<&TokenMeter> {
        self.inner.meter()
    }

    /// Infallible view for callers that cannot handle errors: terminal
    /// failures collapse to a `<<llm-error:...>>` sentinel. Error-aware
    /// callers (the agents) use [`LanguageModel::try_complete`] and fall
    /// back to rule-based paths instead.
    fn complete(&self, prompt: &str) -> String {
        self.try_complete(prompt)
            .unwrap_or_else(|e| format!("<<llm-error:{}>>", e.kind()))
    }

    fn try_complete(&self, prompt: &str) -> Result<String, LlmError> {
        let t = self.telemetry();
        // Request-traced calls get their own `llm:transport` span, so a
        // stored trace shows the transport layer (attempts, outcome) as
        // leaves under the calling agent. Untraced work — offline fleet
        // and chaos runs — opens no span, keeping those span forests
        // identical to pre-tracing runs (FleetReport stage/agent stats
        // and the obsdiff baseline are derived from them).
        let span = t
            .as_ref()
            .filter(|t| t.current_trace().is_some())
            .map(|t| t.span("llm:transport"));
        let note = |outcome: &str, attempts: u32| {
            if let Some(span) = &span {
                span.attr("outcome", outcome);
                span.attr("attempts", attempts.to_string());
            }
        };
        match self.breaker.admit() {
            Err(()) => {
                if let Some(t) = &t {
                    t.metrics().incr("llm.breaker.rejected", 1);
                }
                note("breaker_open", 0);
                return Err(LlmError::BreakerOpen);
            }
            Ok(Some(transition)) => self.note_transition(&t, transition),
            Ok(None) => {}
        }
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut faults: u32 = 0;
        loop {
            match self.inner.try_complete(prompt) {
                Ok(out) => {
                    if let Some(transition) = self.breaker.record_success() {
                        self.note_transition(&t, transition);
                    }
                    if faults > 0 {
                        if let Some(t) = &t {
                            t.metrics().incr("llm.faults.recovered", 1);
                        }
                    }
                    note("ok", attempt + 1);
                    return Ok(out);
                }
                Err(e) => {
                    faults += 1;
                    if let Some(t) = &t {
                        t.metrics().incr(&format!("llm.faults.{}", e.kind()), 1);
                        t.record_event(EventKind::LlmFault, format!("attempt {attempt}: {e}"));
                    }
                    if let Some(transition) = self.breaker.record_failure() {
                        self.note_transition(&t, transition);
                    }
                    if self.breaker.state() == BreakerState::Open {
                        // The breaker tripped on this call's failures:
                        // stop burning attempts against a down backend.
                        note("exhausted", attempt + 1);
                        return Err(self.exhausted(&t, attempt + 1, e));
                    }
                    if attempt >= self.retry.max_retries {
                        note("exhausted", attempt + 1);
                        return Err(self.exhausted(&t, attempt + 1, e));
                    }
                    let delay = self.backoff_ms(attempt, prompt);
                    if start.elapsed().as_millis() as u64 + delay >= self.retry.deadline_ms {
                        note("exhausted", attempt + 1);
                        return Err(self.exhausted(&t, attempt + 1, e));
                    }
                    if delay > 0 {
                        std::thread::sleep(Duration::from_millis(delay));
                    }
                    attempt += 1;
                    if let Some(t) = &t {
                        t.metrics().incr("llm.faults.retries", 1);
                        t.record_event(
                            EventKind::TransportRetry,
                            format!("attempt {attempt} after {} ({delay}ms backoff)", e.kind()),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimLlm;
    use crate::prompt::Prompt;

    /// Deterministic infallible echo backend.
    struct Echo;
    impl LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn complete(&self, prompt: &str) -> String {
            format!("echo:{prompt}")
        }
    }

    /// Fails the first `until` calls with a transport error, then
    /// succeeds forever.
    struct Flaky {
        until: u64,
        calls: AtomicU64,
    }
    impl Flaky {
        fn new(until: u64) -> Self {
            Flaky {
                until,
                calls: AtomicU64::new(0),
            }
        }
    }
    impl LanguageModel for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn complete(&self, _prompt: &str) -> String {
            "ok".to_string()
        }
        fn try_complete(&self, _prompt: &str) -> Result<String, LlmError> {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.until {
                Err(LlmError::Transport("injected".into()))
            } else {
                Ok("ok".to_string())
            }
        }
    }

    fn policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            deadline_ms: 10_000,
        }
    }

    #[test]
    fn zero_rate_chaos_is_a_passthrough() {
        let chaos = ChaosLlm::new(Echo, ChaosConfig::disabled(7));
        assert_eq!(chaos.try_complete("hi"), Ok("echo:hi".to_string()));
        assert_eq!(chaos.complete("hi"), "echo:hi");
        assert_eq!(chaos.name(), "echo");
        assert!(chaos.meter().is_none());
    }

    #[test]
    fn each_fault_kind_fires_at_rate_one() {
        let mk = |f: fn(&mut ChaosConfig)| {
            let mut c = ChaosConfig::disabled(7);
            f(&mut c);
            ChaosLlm::new(Echo, c)
        };
        let t = mk(|c| c.transport_rate = 1.0).try_complete("p");
        assert!(matches!(t, Err(LlmError::Transport(_))), "{t:?}");
        let t = mk(|c| c.timeout_rate = 1.0).try_complete("p");
        assert!(matches!(t, Err(LlmError::Timeout { .. })), "{t:?}");
        let t = mk(|c| c.truncate_rate = 1.0).try_complete("payload");
        match t {
            Err(LlmError::Truncated(partial)) => {
                assert!("echo:payload".starts_with(&partial), "{partial}");
                assert!(partial.len() < "echo:payload".len());
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        let t = mk(|c| c.garbage_rate = 1.0).try_complete("p");
        match t {
            Err(LlmError::Garbage(junk)) => assert!(junk.contains("garbage"), "{junk}"),
            other => panic!("expected garbage, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_complete_propagates_the_corrupt_payload() {
        let mut c = ChaosConfig::disabled(7);
        c.garbage_rate = 1.0;
        let chaos = ChaosLlm::new(Echo, c);
        assert!(chaos.complete("p").contains("garbage"));
        assert_eq!(
            LlmError::BreakerOpen.into_poison(),
            "<<llm-error:breaker_open>>"
        );
    }

    #[test]
    fn resilient_retries_recover_and_count() {
        let t = Telemetry::new();
        let r = ResilientLlm::new(Flaky::new(2), policy(3), BreakerConfig::default());
        r.attach_telemetry(t.clone());
        assert_eq!(r.try_complete("q"), Ok("ok".to_string()));
        let m = t.metrics();
        assert_eq!(m.counter("llm.faults.transport"), 2);
        assert_eq!(m.counter("llm.faults.retries"), 2);
        assert_eq!(m.counter("llm.faults.recovered"), 1);
        assert_eq!(m.counter("llm.faults.exhausted"), 0);
        assert_eq!(m.counter("llm.breaker.trips"), 0);
        // Pre-registration: the whole taxonomy is present, at zero.
        for name in FAULT_COUNTERS {
            assert!(
                m.snapshot().counters.iter().any(|(n, _)| n == name),
                "{name} missing"
            );
        }
        assert_eq!(m.gauge(BREAKER_STATE_GAUGE), BreakerState::Closed as i64);
    }

    #[test]
    fn resilient_exhausts_bounded_retries() {
        let t = Telemetry::new();
        // Threshold high enough that the breaker stays out of the way.
        let breaker = BreakerConfig {
            failure_threshold: 100,
            ..BreakerConfig::default()
        };
        let r = ResilientLlm::new(Flaky::new(100), policy(2), breaker);
        r.attach_telemetry(t.clone());
        match r.try_complete("q") {
            Err(LlmError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert_eq!(last.kind(), "transport");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(t.metrics().counter("llm.faults.exhausted"), 1);
        assert!(!LlmError::BreakerOpen.is_retryable());
        assert!(LlmError::Transport("x".into()).is_retryable());
    }

    #[test]
    fn breaker_trips_rejects_then_half_opens_and_closes() {
        let t = Telemetry::new();
        let breaker = BreakerConfig {
            failure_threshold: 3,
            open_cooldown: 2,
            half_open_probes: 2,
        };
        let r = ResilientLlm::new(Flaky::new(3), policy(5), breaker);
        r.attach_telemetry(t.clone());
        // Call 1: three consecutive faults trip the breaker mid-call.
        match r.try_complete("q") {
            Err(LlmError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert_eq!(r.breaker().state(), BreakerState::Open);
        assert_eq!(r.breaker().trips(), 1);
        assert_eq!(t.metrics().counter("llm.breaker.trips"), 1);
        assert_eq!(
            t.metrics().gauge(BREAKER_STATE_GAUGE),
            BreakerState::Open as i64
        );
        // Call 2: rejected outright, backend untouched.
        assert_eq!(r.try_complete("q"), Err(LlmError::BreakerOpen));
        assert_eq!(t.metrics().counter("llm.breaker.rejected"), 1);
        // Call 3: cooldown reached — admitted as the half-open probe, and
        // the backend has recovered.
        assert_eq!(r.try_complete("q"), Ok("ok".to_string()));
        assert_eq!(r.breaker().state(), BreakerState::HalfOpen);
        // Call 4: second probe success closes the breaker.
        assert_eq!(r.try_complete("q"), Ok("ok".to_string()));
        assert_eq!(r.breaker().state(), BreakerState::Closed);
        assert_eq!(
            t.metrics().gauge(BREAKER_STATE_GAUGE),
            BreakerState::Closed as i64
        );
    }

    #[test]
    fn half_open_failure_reopens() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_cooldown: 1,
            half_open_probes: 1,
        });
        assert_eq!(
            b.record_failure(),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        assert_eq!(
            b.admit(),
            Ok(Some((BreakerState::Open, BreakerState::HalfOpen)))
        );
        assert_eq!(
            b.record_failure(),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        assert_eq!(b.trips(), 2);
        assert_eq!(
            b.admit(),
            Ok(Some((BreakerState::Open, BreakerState::HalfOpen)))
        );
        assert_eq!(
            b.record_success(),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(BreakerState::from_gauge(1), BreakerState::Open);
        assert_eq!(BreakerState::from_gauge(9), BreakerState::Closed);
    }

    #[test]
    fn deadline_budget_stops_retries_early() {
        let r = ResilientLlm::new(
            Flaky::new(100),
            RetryPolicy {
                max_retries: 5,
                base_backoff_ms: 1,
                max_backoff_ms: 1,
                deadline_ms: 0,
            },
            BreakerConfig {
                failure_threshold: 100,
                ..BreakerConfig::default()
            },
        );
        match r.try_complete("q") {
            Err(LlmError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 1),
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let r = ResilientLlm::new(Echo, RetryPolicy::default(), BreakerConfig::default());
        let a0 = r.backoff_ms(0, "prompt");
        assert_eq!(a0, r.backoff_ms(0, "prompt"));
        // Jitter depends on the prompt, the base window on the attempt.
        for attempt in 0..8 {
            let d = r.backoff_ms(attempt, "prompt");
            assert!(d <= r.retry().max_backoff_ms, "attempt {attempt}: {d}");
        }
        assert!(r.backoff_ms(3, "prompt") >= r.retry().max_backoff_ms / 2);
    }

    #[test]
    fn resilient_complete_returns_sentinel_not_garbage() {
        let r = ResilientLlm::new(Flaky::new(100), policy(1), BreakerConfig::default());
        assert_eq!(r.complete("q"), "<<llm-error:retries_exhausted>>");
    }

    fn sim_prompt(question: &str) -> String {
        Prompt::new("nl2sql")
            .section(
                "schema",
                "table sales: region (str), amount (int), ftime (date)",
            )
            .section("question", question)
            .render()
    }

    #[test]
    fn full_stack_passthrough_over_simllm() {
        let raw = SimLlm::gpt4();
        let wrapped = ResilientLlm::new(
            ChaosLlm::new(SimLlm::gpt4(), ChaosConfig::disabled(7)),
            RetryPolicy::default(),
            BreakerConfig::default(),
        );
        for q in ["total amount by region", "average amount for east"] {
            let p = sim_prompt(q);
            assert_eq!(raw.complete(&p), wrapped.complete(&p));
        }
        assert_eq!(
            raw.usage().snapshot(),
            wrapped.inner().inner().usage().snapshot()
        );
    }

    #[test]
    fn transport_span_only_opens_under_an_active_trace() {
        use datalab_telemetry::TraceId;
        let t = Telemetry::new();
        let breaker = BreakerConfig {
            failure_threshold: 100,
            ..BreakerConfig::default()
        };
        let r = ResilientLlm::new(Flaky::new(1), policy(3), breaker);
        r.attach_telemetry(t.clone());

        // Untraced call: no span, even though telemetry is attached.
        assert_eq!(r.try_complete("q"), Ok("ok".to_string()));
        assert!(t.tracer().is_empty(), "untraced call opened a span");

        // Traced call (fresh backend so the retry path fires too).
        let r = ResilientLlm::new(
            Flaky::new(1),
            policy(3),
            BreakerConfig {
                failure_threshold: 100,
                ..BreakerConfig::default()
            },
        );
        r.attach_telemetry(t.clone());
        t.set_trace(Some(TraceId::parse("req-7").unwrap()));
        assert_eq!(r.try_complete("q"), Ok("ok".to_string()));
        t.set_trace(None);
        let forest = t.drain_trace();
        assert_eq!(forest.len(), 1, "{forest:?}");
        let span = &forest[0];
        assert_eq!(span.name, "llm:transport");
        let attr = |k: &str| {
            span.attrs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(attr("trace_id"), Some("req-7"));
        assert_eq!(attr("outcome"), Some("ok"));
        assert_eq!(attr("attempts"), Some("2"));
        // The fault event recorded mid-call carries the same trace. The
        // earlier untraced call logged its own fault, so scan newest-first.
        let fault = t
            .events()
            .tail(16)
            .into_iter()
            .rev()
            .find(|e| e.kind == EventKind::LlmFault)
            .expect("fault event");
        assert_eq!(fault.trace.as_deref(), Some("req-7"));
    }

    #[test]
    fn observed_fault_rate_tracks_config() {
        let chaos = ChaosLlm::new(Echo, ChaosConfig::uniform(7, 0.4));
        let mut faults = 0;
        for i in 0..500 {
            if chaos.try_complete(&format!("prompt {i}")).is_err() {
                faults += 1;
            }
        }
        // Loose bound; the stream is hash-derived, not i.i.d.
        let rate = faults as f64 / 500.0;
        assert!((0.25..0.55).contains(&rate), "rate {rate}");
    }
}
