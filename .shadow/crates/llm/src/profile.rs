//! Model capability profiles.
//!
//! The paper's sensitivity analysis (Fig. 7) swaps GPT-4, Qwen-2.5 and
//! LLaMA-3.1 under the same DataLab scaffolding. We model each foundation
//! model as a profile of per-skill reliabilities in `[0, 1]`: the
//! probability that the model executes a unit of that skill without a
//! characteristic slip. Values are chosen to mirror the orderings the
//! paper reports (GPT-4 strongest overall; LLaMA-3.1 notably weaker at
//! code; all three close on visualization).

use serde::{Deserialize, Serialize};

/// Per-skill reliability profile of a foundation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name as reported in outputs and usage logs.
    pub name: String,
    /// SQL generation reliability.
    pub sql_skill: f64,
    /// Data-science code generation reliability.
    pub code_skill: f64,
    /// Visualization grammar reliability.
    pub vis_skill: f64,
    /// Multi-step reasoning / planning reliability.
    pub reasoning: f64,
    /// Instruction following (format compliance, schema adherence).
    pub instruction_following: f64,
    /// Context window in tokens; longer prompts are truncated from the
    /// middle, degrading grounding.
    pub context_window: usize,
}

impl ModelProfile {
    /// GPT-4-class proprietary model.
    pub fn gpt4() -> Self {
        ModelProfile {
            name: "gpt-4".into(),
            sql_skill: 0.93,
            code_skill: 0.90,
            vis_skill: 0.88,
            reasoning: 0.92,
            instruction_following: 0.95,
            context_window: 8192,
        }
    }

    /// Qwen-2.5-class open model.
    pub fn qwen25() -> Self {
        ModelProfile {
            name: "qwen-2.5".into(),
            sql_skill: 0.87,
            code_skill: 0.78,
            vis_skill: 0.86,
            reasoning: 0.84,
            instruction_following: 0.88,
            context_window: 8192,
        }
    }

    /// LLaMA-3.1-class open model: notably weaker code generation, but
    /// visualization on par with the others (the paper's Fig. 7 even has
    /// it slightly ahead on VisEval).
    pub fn llama31() -> Self {
        ModelProfile {
            name: "llama-3.1".into(),
            sql_skill: 0.80,
            code_skill: 0.58,
            vis_skill: 0.89,
            reasoning: 0.70,
            instruction_following: 0.82,
            context_window: 8192,
        }
    }

    /// The skill relevant to a task label.
    pub fn skill_for(&self, task: &str) -> f64 {
        match task {
            "nl2sql" | "dsl2sql" | "schema_linking" => self.sql_skill,
            "nl2code" | "nl2dscode" => self.code_skill,
            "nl2vis" | "vis_spec" => self.vis_skill,
            "nl2dsl" | "plan" | "insight" | "summarize" | "extract_knowledge" => self.reasoning,
            _ => self.instruction_following,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_paper() {
        let g = ModelProfile::gpt4();
        let q = ModelProfile::qwen25();
        let l = ModelProfile::llama31();
        assert!(g.sql_skill > q.sql_skill && q.sql_skill > l.sql_skill);
        assert!(g.code_skill > q.code_skill && q.code_skill > l.code_skill);
        // Vis skills are close, with llama slightly ahead of qwen/gpt4 ordering flexible.
        assert!((g.vis_skill - l.vis_skill).abs() < 0.05);
    }

    #[test]
    fn skill_lookup() {
        let g = ModelProfile::gpt4();
        assert_eq!(g.skill_for("nl2sql"), g.sql_skill);
        assert_eq!(g.skill_for("nl2code"), g.code_skill);
        assert_eq!(g.skill_for("unknown_task"), g.instruction_following);
    }
}
