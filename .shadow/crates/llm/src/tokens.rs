//! Token counting and usage accounting.
//!
//! DataLab's Table IV reports *Token Cost per Query*; the meter here
//! records the tokens of every prompt/completion pair that flows through a
//! model so the harness can reproduce that measurement.

use std::sync::atomic::{AtomicU64, Ordering};

/// Approximate token count of a text, calibrated to the usual ~4
/// characters/token rule with a floor of one token per whitespace word.
pub fn count_tokens(text: &str) -> usize {
    let words = text.split_whitespace().count();
    let by_chars = text.chars().count() / 4;
    words.max(by_chars)
}

/// Thread-safe accumulator of prompt/completion token usage.
#[derive(Debug, Default)]
pub struct TokenMeter {
    prompt_tokens: AtomicU64,
    completion_tokens: AtomicU64,
    calls: AtomicU64,
}

impl TokenMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        TokenMeter::default()
    }

    /// Records one model call.
    pub fn record(&self, prompt_tokens: usize, completion_tokens: usize) {
        self.prompt_tokens
            .fetch_add(prompt_tokens as u64, Ordering::Relaxed);
        self.completion_tokens
            .fetch_add(completion_tokens as u64, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total prompt tokens so far.
    pub fn prompt_tokens(&self) -> u64 {
        self.prompt_tokens.load(Ordering::Relaxed)
    }

    /// Total completion tokens so far.
    pub fn completion_tokens(&self) -> u64 {
        self.completion_tokens.load(Ordering::Relaxed)
    }

    /// Total tokens (prompt + completion).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens() + self.completion_tokens()
    }

    /// Number of model calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets all counters (used between benchmark queries).
    pub fn reset(&self) {
        self.prompt_tokens.store(0, Ordering::Relaxed);
        self.completion_tokens.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy as a telemetry [`TokenUsage`] — the shape the
    /// attribution ledger uses, so meter-vs-attribution equality checks
    /// compare like with like.
    pub fn snapshot(&self) -> datalab_telemetry::TokenUsage {
        datalab_telemetry::TokenUsage {
            prompt_tokens: self.prompt_tokens(),
            completion_tokens: self.completion_tokens(),
            calls: self.calls(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_text() {
        assert_eq!(count_tokens(""), 0);
        let short = count_tokens("select one");
        let long = count_tokens(&"select one ".repeat(50));
        assert!(long > short * 10);
    }

    #[test]
    fn char_floor_applies_to_dense_text() {
        // A single very long word still costs ~len/4 tokens.
        let t = "x".repeat(400);
        assert!(count_tokens(&t) >= 100);
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let m = TokenMeter::new();
        m.record(100, 20);
        m.record(50, 10);
        assert_eq!(m.prompt_tokens(), 150);
        assert_eq!(m.completion_tokens(), 30);
        assert_eq!(m.total_tokens(), 180);
        assert_eq!(m.calls(), 2);
        let snap = m.snapshot();
        assert_eq!(snap.prompt_tokens, 150);
        assert_eq!(snap.completion_tokens, 30);
        assert_eq!(snap.calls, 2);
        assert_eq!(snap.total(), 180);
        m.reset();
        assert_eq!(m.total_tokens(), 0);
        // reset must clear the call count too, not only the token sums.
        assert_eq!(m.calls(), 0);
        assert_eq!(m.snapshot(), datalab_telemetry::TokenUsage::default());
    }

    #[test]
    fn default_meter_is_empty() {
        let m = TokenMeter::default();
        assert_eq!(m.calls(), 0);
        assert_eq!(m.total_tokens(), 0);
    }
}
