//! Structured information units (paper §V): the six-field message format
//! agents communicate with, plus the lossy natural-language serialisation
//! used by the S2 ablation of Table III.

use serde::{Deserialize, Serialize};

/// The payload type of a unit's `Content` field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Content {
    /// A SQL query text.
    Sql(String),
    /// A dscript program.
    Code(String),
    /// A chart-spec JSON.
    Chart(String),
    /// A data table in evidence-line form (`table v: ...` / `values ...`),
    /// so downstream agents can ground against it.
    Table(String),
    /// Free text (insights, summaries, errors).
    Text(String),
}

impl Content {
    /// The raw inner text.
    pub fn text(&self) -> &str {
        match self {
            Content::Sql(s)
            | Content::Code(s)
            | Content::Chart(s)
            | Content::Table(s)
            | Content::Text(s) => s,
        }
    }

    /// A short label for the payload type.
    pub fn label(&self) -> &'static str {
        match self {
            Content::Sql(_) => "sql",
            Content::Code(_) => "code",
            Content::Chart(_) => "chart",
            Content::Table(_) => "table",
            Content::Text(_) => "text",
        }
    }
}

/// The six-field structured information unit of §V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InformationUnit {
    /// Dataset the agent manipulated (table identifier / variable name).
    pub data_source: String,
    /// The producing agent's identity (e.g. `sql_agent`).
    pub role: String,
    /// The behaviour performed (e.g. `generate_sql_query`).
    pub action: String,
    /// A concise description of the executed action.
    pub description: String,
    /// The output payload.
    pub content: Content,
    /// Logical completion time (monotone counter — deterministic runs).
    pub timestamp: u64,
}

impl InformationUnit {
    /// Renders the unit in structured form for prompt context sections.
    /// Table payloads are passed through verbatim so their evidence lines
    /// stay machine-groundable — that is the point of the format.
    pub fn render_structured(&self) -> String {
        let mut s = format!(
            "unit role={} action={} source={} time={}\ndescription: {}\n",
            self.role, self.action, self.data_source, self.timestamp, self.description
        );
        s.push_str(self.content.text());
        s.push('\n');
        s
    }

    /// Renders the unit as flowing natural-language prose — the S2
    /// ablation. The structured evidence lines are folded into sentences,
    /// which is exactly how schema/value grounding gets lost in NL-only
    /// multi-agent frameworks.
    pub fn render_natural_language(&self) -> String {
        let mut s = format!(
            "The {} performed {} on {}. {}. It reported that ",
            self.role.replace('_', " "),
            self.action.replace('_', " "),
            self.data_source,
            self.description
        );
        let flattened = self
            .content
            .text()
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .join(", and that ");
        s.push_str(&flattened);
        s.push_str(".\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> InformationUnit {
        InformationUnit {
            data_source: "sales".into(),
            role: "sql_agent".into(),
            action: "generate_sql_query".into(),
            description: "extracted revenue by region".into(),
            content: Content::Table(
                "table df_sales: region (str), sum_amount (int)\nvalues df_sales.region: east, west"
                    .into(),
            ),
            timestamp: 3,
        }
    }

    #[test]
    fn structured_rendering_preserves_evidence_lines() {
        let text = unit().render_structured();
        assert!(text.contains("role=sql_agent"));
        assert!(text.lines().any(|l| l.starts_with("table df_sales:")));
        assert!(text
            .lines()
            .any(|l| l.starts_with("values df_sales.region:")));
    }

    #[test]
    fn natural_language_rendering_destroys_line_structure() {
        let text = unit().render_natural_language();
        // No line starts with the structured prefixes any more.
        assert!(!text
            .lines()
            .any(|l| l.trim().starts_with("table df_sales:")));
        assert!(text.contains("sql agent"));
    }

    #[test]
    fn serde_roundtrip() {
        let u = unit();
        let json = serde_json::to_string(&u).unwrap();
        assert_eq!(serde_json::from_str::<InformationUnit>(&json).unwrap(), u);
    }
}
