//! Real statistical analysis primitives used by the insight, anomaly,
//! causal, and forecasting agents. Everything here computes on actual
//! data — only the narration of the results goes through the LLM.

use datalab_frame::{AggExpr, AggFunc, DataFrame, DataType};

/// Pearson correlation of two equal-length samples (0.0 for degenerate
/// inputs).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Least-squares line fit returning `(slope, intercept)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len().min(ys.len());
    if n == 0 {
        return (0.0, 0.0);
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        num += (xs[i] - mx) * (ys[i] - my);
        den += (xs[i] - mx) * (xs[i] - mx);
    }
    let slope = if den == 0.0 { 0.0 } else { num / den };
    (slope, my - slope * mx)
}

/// Z-scores of a sample (all zeros for constant input).
pub fn zscores(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0);
    let sd = var.sqrt();
    if sd == 0.0 {
        return vec![0.0; n];
    }
    values.iter().map(|v| (v - mean) / sd).collect()
}

/// Extracts a numeric column as `f64`s, skipping nulls (returned indices
/// refer to original rows).
pub fn numeric_column(
    df: &DataFrame,
    name: &str,
) -> Result<(Vec<usize>, Vec<f64>), datalab_frame::FrameError> {
    let col = df.column(name)?;
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for (i, v) in col.iter().enumerate() {
        if let Some(f) = v.as_f64() {
            idx.push(i);
            vals.push(f);
        }
    }
    Ok((idx, vals))
}

/// First column of each kind — helpers for agents choosing targets.
pub fn first_numeric_column(df: &DataFrame) -> Option<String> {
    df.schema()
        .fields()
        .iter()
        .find(|f| f.dtype.is_numeric())
        .map(|f| f.name.clone())
}

/// First date column.
pub fn first_date_column(df: &DataFrame) -> Option<String> {
    df.schema()
        .fields()
        .iter()
        .find(|f| f.dtype == DataType::Date)
        .map(|f| f.name.clone())
}

/// First string (categorical) column.
pub fn first_string_column(df: &DataFrame) -> Option<String> {
    df.schema()
        .fields()
        .iter()
        .find(|f| f.dtype == DataType::Str)
        .map(|f| f.name.clone())
}

/// A computed fact about a dataset: one line of evidence for insight
/// synthesis, plus a machine-checkable key for benchmark scoring.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Stable key, e.g. `top_category`, `trend`, `share_top`.
    pub key: String,
    /// Human-readable statement.
    pub statement: String,
}

/// Computes the standard BI facts about a frame: totals, top/bottom
/// categories, shares, and trend direction over time. Targets default to
/// the first numeric/string columns.
pub fn compute_facts(df: &DataFrame) -> Vec<Fact> {
    compute_facts_for(df, None, None)
}

/// Like [`compute_facts`] but focused on a specific measure and dimension
/// (e.g. the ones a user's question grounded to).
pub fn compute_facts_for(df: &DataFrame, measure: Option<&str>, dim: Option<&str>) -> Vec<Fact> {
    let mut facts = Vec::new();
    let measure = measure
        .filter(|m| {
            df.schema()
                .field(m)
                .map(|f| f.dtype.is_numeric())
                .unwrap_or(false)
        })
        .map(String::from)
        .or_else(|| first_numeric_column(df));
    let Some(measure) = measure else {
        return facts;
    };
    let dim = dim
        .filter(|d| {
            df.schema()
                .field(d)
                .map(|f| f.dtype == DataType::Str)
                .unwrap_or(false)
        })
        .map(String::from)
        .or_else(|| first_string_column(df));
    let n = df.n_rows();
    facts.push(Fact {
        key: "rows".into(),
        statement: format!("the dataset has {n} rows"),
    });

    if let Ok((_, vals)) = numeric_column(df, &measure) {
        if !vals.is_empty() {
            let total: f64 = vals.iter().sum();
            facts.push(Fact {
                key: "total".into(),
                statement: format!("total {measure} is {total:.2}"),
            });
            let mean = total / vals.len() as f64;
            facts.push(Fact {
                key: "mean".into(),
                statement: format!("average {measure} is {mean:.2}"),
            });
        }
    }

    if let Some(dim) = dim {
        if let Ok(g) = df.group_by(
            &[dim.as_str()],
            &[AggExpr::new(AggFunc::Sum, &measure, "__t")],
        ) {
            if let (Ok(dims), Ok(totals)) = (g.column(&dim), g.column("__t")) {
                let mut pairs: Vec<(String, f64)> = dims
                    .iter()
                    .zip(totals.iter())
                    .filter_map(|(d, t)| t.as_f64().map(|f| (d.render(), f)))
                    .collect();
                pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                if let Some((top, top_v)) = pairs.first() {
                    facts.push(Fact {
                        key: "top_category".into(),
                        statement: format!("{top} has the highest total {measure} at {top_v:.2}"),
                    });
                    let total: f64 = pairs.iter().map(|(_, v)| v).sum();
                    if total > 0.0 {
                        facts.push(Fact {
                            key: "share_top".into(),
                            statement: format!(
                                "{top} accounts for {:.1}% of total {measure}",
                                100.0 * top_v / total
                            ),
                        });
                    }
                }
                if pairs.len() > 1 {
                    let (bottom, bottom_v) = &pairs[pairs.len() - 1];
                    facts.push(Fact {
                        key: "bottom_category".into(),
                        statement: format!(
                            "{bottom} has the lowest total {measure} at {bottom_v:.2}"
                        ),
                    });
                }
            }
        }
    }

    if let Some(date_col) = first_date_column(df) {
        if let Ok(sorted) = df.sort_by(&[(date_col.as_str(), true)]) {
            if let (Ok(dates), Ok((_, vals))) =
                (sorted.column(&date_col), numeric_column(&sorted, &measure))
            {
                let xs: Vec<f64> = dates
                    .iter()
                    .filter_map(|d| d.as_date().map(|d| d.to_epoch_days() as f64))
                    .collect();
                if xs.len() >= 3 && xs.len() == vals.len() {
                    let (slope, _) = linear_fit(&xs, &vals);
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    let rel = if mean.abs() > 1e-9 {
                        slope * 30.0 / mean
                    } else {
                        0.0
                    };
                    let direction = if rel > 0.02 {
                        "increasing"
                    } else if rel < -0.02 {
                        "decreasing"
                    } else {
                        "flat"
                    };
                    facts.push(Fact {
                        key: "trend".into(),
                        statement: format!("{measure} shows an {direction} trend over {date_col}"),
                    });
                }
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::{Date, Value};

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (slope, intercept) = linear_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscores_flag_outlier() {
        let z = zscores(&[10.0, 11.0, 9.0, 10.0, 50.0]);
        assert!(z[4] > 1.5);
        assert!(z[0].abs() < 1.0);
        assert_eq!(zscores(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn facts_cover_top_share_trend() {
        let df = DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                vec!["east".into(), "west".into(), "east".into(), "west".into()],
            ),
            (
                "amount",
                DataType::Int,
                vec![10.into(), 5.into(), 20.into(), 5.into()],
            ),
            (
                "day",
                DataType::Date,
                (0..4)
                    .map(|i| Value::Date(Date::parse("2024-01-01").unwrap().add_days(i * 30)))
                    .collect(),
            ),
        ])
        .unwrap();
        let facts = compute_facts(&df);
        let get = |k: &str| {
            facts
                .iter()
                .find(|f| f.key == k)
                .map(|f| f.statement.clone())
        };
        assert!(get("top_category").unwrap().contains("east"));
        assert!(get("share_top").unwrap().contains("75.0%"));
        assert!(get("total").unwrap().contains("40.00"));
        assert!(get("trend").is_some());
    }

    #[test]
    fn facts_empty_for_non_numeric_frame() {
        let df = DataFrame::from_columns(vec![("s", DataType::Str, vec!["a".into()])]).unwrap();
        assert!(compute_facts(&df).is_empty());
    }
}
