//! The proxy agent (paper §V, Fig. 6): receives the user query, plans an
//! FSM of subtasks, manages selective information retrieval from the
//! shared buffer, runs the specialised agents, and synthesises the final
//! answer.

use crate::agents::{agent_for_role, AgentContext, AgentOutput};
use crate::buffer::SharedBuffer;
use crate::fsm::Fsm;
use crate::info::InformationUnit;
use datalab_frame::DataFrame;
use datalab_llm::{plan_with_parts, LanguageModel, Prompt};
use datalab_sql::Database;
use datalab_telemetry::Telemetry;
use datalab_viz::RenderedChart;
use std::collections::HashMap;

/// The communication-protocol ablation axes of Table III.
#[derive(Debug, Clone)]
pub struct CommunicationConfig {
    /// S1 removes this: FSM-based selective retrieval. Without it every
    /// agent receives *all* information from the shared buffer.
    pub use_fsm: bool,
    /// S2 removes this: the structured information format. Without it
    /// units are rendered as natural-language prose.
    pub structured: bool,
    /// Maximum model/agent calls per agent (the paper's success
    /// criterion uses 5).
    pub max_calls_per_agent: usize,
}

impl Default for CommunicationConfig {
    fn default() -> Self {
        CommunicationConfig {
            use_fsm: true,
            structured: true,
            max_calls_per_agent: 5,
        }
    }
}

/// The result of one proxied query.
#[derive(Debug, Clone)]
pub struct ProxyOutcome {
    /// Final synthesised answer.
    pub answer: String,
    /// Whether every subtask completed within the call budget.
    pub success: bool,
    /// Plan (ordered agent roles).
    pub plan: Vec<String>,
    /// All buffer units at completion.
    pub units: Vec<InformationUnit>,
    /// Frames produced per agent role.
    pub frames: HashMap<String, DataFrame>,
    /// The last produced frame, if any.
    pub final_frame: Option<DataFrame>,
    /// The last rendered chart, if any.
    pub chart: Option<RenderedChart>,
    /// Roles whose subtasks failed.
    pub failed_roles: Vec<String>,
    /// Roles (and proxy stages: `planner`, `synthesizer`) served by a
    /// rule-based fallback because the model transport was down. A
    /// nonempty list marks the whole response as degraded.
    pub degraded_roles: Vec<String>,
}

/// Maps the planner's task labels to agent roles.
fn role_for_label(label: &str) -> &'static str {
    match label.trim() {
        "nl2sql" => "sql_agent",
        "nl2dscode" | "nl2code" => "code_agent",
        "nl2vis" => "vis_agent",
        "anomaly" => "anomaly_agent",
        "causal" => "causal_agent",
        "forecast" => "forecast_agent",
        _ => "insight_agent",
    }
}

/// The proxy agent.
pub struct ProxyAgent<'a> {
    llm: &'a dyn LanguageModel,
    config: CommunicationConfig,
    telemetry: Telemetry,
}

impl<'a> ProxyAgent<'a> {
    /// Creates a proxy over the given model (with a private, unobserved
    /// telemetry pipeline; see [`ProxyAgent::with_telemetry`]).
    pub fn new(llm: &'a dyn LanguageModel, config: CommunicationConfig) -> Self {
        ProxyAgent {
            llm,
            config,
            telemetry: Telemetry::new(),
        }
    }

    /// Shares the platform's telemetry pipeline, so the proxy's stage and
    /// agent scopes attribute the model calls the platform observes. The
    /// same handle must be attached to the model for token attribution to
    /// line up.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Handles one user query end to end (steps 1-7 of Fig. 6) with a
    /// fresh shared buffer.
    pub fn run_query(
        &self,
        db: &Database,
        schema_section: &str,
        knowledge_section: &str,
        question: &str,
        current_date: &str,
    ) -> ProxyOutcome {
        let buffer = SharedBuffer::default();
        self.run_query_with_buffer(
            db,
            schema_section,
            knowledge_section,
            question,
            current_date,
            &buffer,
        )
    }

    /// Like [`ProxyAgent::run_query`] but reusing a session-scoped shared
    /// buffer: in a real BI session the buffer accumulates across
    /// queries, which is exactly what makes unselective (no-FSM)
    /// retrieval drown agents in stale context.
    pub fn run_query_with_buffer(
        &self,
        db: &Database,
        schema_section: &str,
        knowledge_section: &str,
        question: &str,
        current_date: &str,
        buffer: &SharedBuffer,
    ) -> ProxyOutcome {
        // Step 1-2: analyse the query and formulate the execution plan —
        // subtasks allocated to specialised agents. When the model
        // transport is down, the pure rule-based planner serves instead
        // (it is the same decomposition the simulated model performs).
        let mut degraded_roles: Vec<String> = Vec::new();
        let plan_out = {
            let _stage = self.telemetry.stage("plan");
            match self
                .llm
                .try_complete(&Prompt::new("plan2").section("question", question).render())
            {
                Ok(text) => text,
                Err(_) => {
                    degraded_roles.push("planner".to_string());
                    plan_with_parts(question)
                        .into_iter()
                        .map(|(label, text)| format!("{label} :: {text}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                }
            }
        };
        let mut plan: Vec<(String, String)> = plan_out
            .lines()
            .filter_map(|l| {
                let (label, text) = l.split_once(" :: ")?;
                Some((role_for_label(label).to_string(), text.trim().to_string()))
            })
            .collect();
        plan.dedup_by(|a, b| a.0 == b.0);
        if plan.is_empty() {
            plan.push(("insight_agent".to_string(), question.to_string()));
        }
        // Run data producers before the analysis stages that consume
        // them; analysis agents fall back to base tables when no stage
        // produced a frame.
        let produces_data = |r: &str| r == "sql_agent" || r == "code_agent";
        plan.sort_by_key(|(r, _)| if produces_data(r) { 0 } else { 1 });
        plan.dedup_by(|a, b| a.0 == b.0);

        let roles: Vec<String> = plan.iter().map(|(r, _)| r.clone()).collect();
        let mut fsm = Fsm::from_plan(&roles);
        // Data produced by the first agent flows to every later stage, not
        // only the next one.
        if roles.len() > 2 && produces_data(&roles[0]) {
            for later in roles.iter().skip(2) {
                fsm.add_edge(roles[0].clone(), later.clone());
            }
        }

        let run_start = buffer.now();
        let mut session_db = db.clone();
        let mut frames: HashMap<String, DataFrame> = HashMap::new();
        let mut final_frame: Option<DataFrame> = None;
        let mut chart: Option<RenderedChart> = None;
        let mut failed_roles = Vec::new();
        let mut focus_table: Option<String> = None;

        let execute_stage = self.telemetry.stage("execute");
        execute_stage.attr("subtasks", plan.len().to_string());
        for (role, subtask) in &plan {
            let agent = match agent_for_role(role) {
                Some(a) => a,
                None => {
                    failed_roles.push(role.clone());
                    self.telemetry.record_event(
                        datalab_telemetry::EventKind::AgentFailure,
                        format!("{role}: no agent registered for role"),
                    );
                    continue;
                }
            };
            // Steps 5-6: selective retrieval from the shared buffer.
            let relevant: Vec<InformationUnit> = if self.config.use_fsm {
                // Selective retrieval: only the FSM-designated sources,
                // and only their output for *this* task.
                let sources = fsm.sources_for(role);
                buffer.by_roles_since(&sources, run_start)
            } else {
                // No protocol: everything in the session buffer.
                buffer.all()
            };
            let context_section: String = relevant
                .iter()
                .map(|u| {
                    if self.config.structured {
                        u.render_structured()
                    } else {
                        u.render_natural_language()
                    }
                })
                .collect();

            fsm.begin(role);
            self.telemetry.metrics().incr("fsm.transitions", 1);
            self.telemetry.record_event(
                datalab_telemetry::EventKind::FsmTransition,
                format!("{role}: pending -> working"),
            );
            self.telemetry.metrics().incr("agents.subtasks", 1);
            // The call budget is spent inside the agent as execution-
            // feedback retries (a deterministic model answers an identical
            // prompt identically, so bare re-calls would be wasted).
            let ctx = AgentContext {
                db: &session_db,
                llm: self.llm,
                schema_section: schema_section.to_string(),
                knowledge_section: knowledge_section.to_string(),
                context_section: context_section.clone(),
                current_date: current_date.to_string(),
                max_retries: self.config.max_calls_per_agent.saturating_sub(1),
                focus_table: focus_table.clone(),
                telemetry: self.telemetry.clone(),
            };
            let outcome: Option<AgentOutput> = {
                let agent_scope = self.telemetry.agent_scope(role);
                agent_scope.attr("context_units", relevant.len().to_string());
                agent.run(subtask, &ctx).ok()
            };
            fsm.complete(role);
            self.telemetry.metrics().incr("fsm.transitions", 1);
            self.telemetry.record_event(
                datalab_telemetry::EventKind::FsmTransition,
                format!("{role}: working -> done"),
            );
            match outcome {
                Some(out) => {
                    if out.degraded {
                        degraded_roles.push(role.clone());
                    }
                    // Steps 3-4: deposit the agent's output into the buffer.
                    buffer.deposit(out.unit.clone());
                    self.telemetry.metrics().incr("buffer.deposits", 1);
                    if let Some(frame) = out.frame {
                        let var = format!("{role}_result");
                        session_db.insert(var.clone(), frame.clone());
                        frames.insert(role.clone(), frame.clone());
                        final_frame = Some(frame);
                        focus_table = Some(var);
                    }
                    if out.chart.is_some() {
                        chart = out.chart;
                    }
                }
                None => {
                    failed_roles.push(role.clone());
                    self.telemetry.metrics().incr("agents.failures", 1);
                    self.telemetry.record_event(
                        datalab_telemetry::EventKind::AgentFailure,
                        format!("{role}: subtask failed after retries: {subtask}"),
                    );
                }
            }
        }
        fsm.finish_all();
        drop(execute_stage);

        // Step 7: synthesise the final answer from this task's results
        // (the proxy tracks what the current plan deposited). The
        // synthesis consumes units in the protocol's wire format, so the
        // no-structure ablation pays its dilution cost here too.
        let task_units: Vec<InformationUnit> = buffer
            .all()
            .into_iter()
            .filter(|u| u.timestamp > run_start)
            .collect();
        let facts: String = task_units
            .iter()
            .map(|u| {
                if self.config.structured {
                    // Structured units separate narrative from raw dumps;
                    // synthesis reads the narrative (rows/code stay in the
                    // notebook artifacts).
                    let narrative: String = u
                        .content
                        .text()
                        .lines()
                        .filter(|l| {
                            !l.starts_with("row:")
                                && !l.starts_with("-- ")
                                && !l.starts_with("values ")
                                && !l.starts_with("table ")
                        })
                        .collect::<Vec<_>>()
                        .join("\n");
                    format!("{}\n{narrative}", u.description)
                } else {
                    u.render_natural_language()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let answer = {
            let _stage = self.telemetry.stage("synthesize");
            match self.llm.try_complete(
                &Prompt::new("summarize")
                    .section("facts", facts.clone())
                    .section("question", question)
                    .render(),
            ) {
                Ok(text) => text,
                Err(_) => {
                    // Degraded synthesis: serve the leading fact lines
                    // verbatim rather than a narrated summary.
                    degraded_roles.push("synthesizer".to_string());
                    facts
                        .lines()
                        .map(str::trim)
                        .filter(|l| !l.is_empty())
                        .take(12)
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            }
        };

        ProxyOutcome {
            answer,
            success: failed_roles.is_empty(),
            plan: roles,
            units: buffer.all(),
            frames,
            final_frame,
            chart,
            failed_roles,
            degraded_roles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::{DataType, Date, Value};
    use datalab_llm::SimLlm;

    fn db() -> Database {
        let mut db = Database::new();
        let dates: Vec<Value> = (0..8)
            .map(|i| Value::Date(Date::parse("2024-01-01").unwrap().add_days(i * 30)))
            .collect();
        db.insert(
            "sales",
            DataFrame::from_columns(vec![
                (
                    "region",
                    DataType::Str,
                    (0..8)
                        .map(|i| {
                            if i % 2 == 0 {
                                "east".into()
                            } else {
                                "west".into()
                            }
                        })
                        .collect(),
                ),
                (
                    "amount",
                    DataType::Int,
                    (0..8).map(|i| Value::Int(10 + 3 * i)).collect(),
                ),
                ("day", DataType::Date, dates),
            ])
            .unwrap(),
        );
        db
    }

    fn schema() -> &'static str {
        "table sales: region (str), amount (int), day (date)\nvalues sales.region: east, west"
    }

    #[test]
    fn single_task_query() {
        let llm = SimLlm::gpt4();
        let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "What is the total amount by region?",
            "2026-07-06",
        );
        assert!(out.success, "{:?}", out.failed_roles);
        assert_eq!(out.plan, vec!["sql_agent"]);
        assert!(out.final_frame.is_some());
        assert!(!out.units.is_empty());
    }

    #[test]
    fn multi_stage_plan_chains_agents() {
        let llm = SimLlm::gpt4();
        let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "Show total amount by region, then plot a bar chart. Forecast the amount for next month",
            "2026-07-06",
        );
        assert!(
            out.plan.contains(&"sql_agent".to_string()),
            "{:?}",
            out.plan
        );
        assert!(out.plan.contains(&"vis_agent".to_string()));
        assert!(out.plan.contains(&"forecast_agent".to_string()));
        assert!(out.success, "failed: {:?}", out.failed_roles);
        assert!(out.chart.is_some());
    }

    #[test]
    fn data_stages_run_before_analysis_stages() {
        let llm = SimLlm::gpt4();
        let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "Detect anomalies in the amounts, then query the total amount by region",
            "2026-07-06",
        );
        assert_eq!(
            out.plan.first().map(String::as_str),
            Some("sql_agent"),
            "{:?}",
            out.plan
        );
        assert!(
            out.plan.contains(&"anomaly_agent".to_string()),
            "{:?}",
            out.plan
        );
    }

    #[test]
    fn telemetry_records_stages_and_agent_scopes() {
        let llm = SimLlm::gpt4();
        let telemetry = Telemetry::new();
        llm.attach_telemetry(telemetry.clone());
        let proxy =
            ProxyAgent::new(&llm, CommunicationConfig::default()).with_telemetry(telemetry.clone());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "What is the total amount by region?",
            "2026-07-06",
        );
        assert!(out.success, "{:?}", out.failed_roles);
        let forest = telemetry.drain_trace();
        let names: Vec<&str> = forest.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["plan", "execute", "synthesize"]);
        assert_eq!(forest[1].children[0].name, "agent:sql_agent");
        assert!(forest.iter().all(|n| n.well_formed()));
        assert!(telemetry.metrics().counter("buffer.deposits") >= 1);
        assert!(telemetry.metrics().counter("agents.subtasks") >= 1);
        assert_eq!(telemetry.metrics().counter("agents.failures"), 0);
        // The model calls landed in the right attribution buckets.
        let attribution = telemetry.attribution();
        assert!(attribution
            .iter()
            .any(|a| a.stage == "plan" && a.agent == "-"));
        assert!(attribution
            .iter()
            .any(|a| a.stage == "execute" && a.agent == "sql_agent"));
        assert!(attribution.iter().any(|a| a.stage == "synthesize"));
        assert_eq!(telemetry.token_totals(), llm.usage().snapshot());
    }

    #[test]
    fn active_trace_tags_every_stage_and_agent_scope() {
        use datalab_telemetry::TraceId;
        let llm = SimLlm::gpt4();
        let telemetry = Telemetry::new();
        llm.attach_telemetry(telemetry.clone());
        telemetry.set_trace(Some(TraceId::parse("req-42").unwrap()));
        let proxy =
            ProxyAgent::new(&llm, CommunicationConfig::default()).with_telemetry(telemetry.clone());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "What is the total amount by region?",
            "2026-07-06",
        );
        telemetry.set_trace(None);
        assert!(out.success, "{:?}", out.failed_roles);
        let forest = telemetry.drain_trace();
        // Every stage span and every nested agent span carries the
        // request's trace ID attribute.
        fn assert_tagged(node: &datalab_telemetry::SpanNode) {
            assert!(
                node.attrs
                    .iter()
                    .any(|(k, v)| k == "trace_id" && v == "req-42"),
                "span {} missing trace_id: {:?}",
                node.name,
                node.attrs
            );
            for child in &node.children {
                assert_tagged(child);
            }
        }
        assert!(!forest.is_empty());
        for root in &forest {
            assert_tagged(root);
        }
        // The model-call events recorded mid-pipeline carry it too.
        let llm_events: Vec<_> = telemetry
            .events()
            .tail(64)
            .into_iter()
            .filter(|e| e.kind == datalab_telemetry::EventKind::LlmCall)
            .collect();
        assert!(!llm_events.is_empty());
        for e in &llm_events {
            assert_eq!(e.trace.as_deref(), Some("req-42"), "{e:?}");
        }
    }

    #[test]
    fn transport_outage_degrades_the_whole_pipeline_without_failing() {
        struct DownLlm;
        impl LanguageModel for DownLlm {
            fn name(&self) -> &str {
                "down"
            }
            fn complete(&self, _prompt: &str) -> String {
                "<<llm-error:breaker_open>>".into()
            }
            fn try_complete(&self, _prompt: &str) -> Result<String, datalab_llm::LlmError> {
                Err(datalab_llm::LlmError::BreakerOpen)
            }
        }
        let llm = DownLlm;
        let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "What is the total amount by region?",
            "2026-07-06",
        );
        // Every stage fell back to the rule-based path; the query still
        // succeeds and the answer never contains transport poison.
        assert!(out.success, "{:?}", out.failed_roles);
        assert!(out.degraded_roles.contains(&"planner".to_string()));
        assert!(out.degraded_roles.contains(&"sql_agent".to_string()));
        assert!(out.degraded_roles.contains(&"synthesizer".to_string()));
        assert!(out.final_frame.is_some());
        assert!(!out.answer.contains("<<llm-error"), "{}", out.answer);
    }

    #[test]
    fn healthy_queries_report_no_degraded_roles() {
        let llm = SimLlm::gpt4();
        let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "What is the total amount by region?",
            "2026-07-06",
        );
        assert!(out.success);
        assert!(out.degraded_roles.is_empty(), "{:?}", out.degraded_roles);
    }

    #[test]
    fn no_fsm_gives_agents_everything() {
        let llm = SimLlm::gpt4();
        let cfg = CommunicationConfig {
            use_fsm: false,
            ..Default::default()
        };
        let proxy = ProxyAgent::new(&llm, cfg);
        let out = proxy.run_query(
            &db(),
            schema(),
            "",
            "Total amount by region, then chart it",
            "2026-07-06",
        );
        // Still usually succeeds on simple 2-agent tasks; mainly a smoke
        // test that the ablation path works.
        assert!(!out.plan.is_empty());
    }

    #[test]
    fn nl_mode_renders_prose_context() {
        let llm = SimLlm::gpt4();
        let cfg = CommunicationConfig {
            structured: false,
            ..Default::default()
        };
        let proxy = ProxyAgent::new(&llm, cfg);
        let out = proxy.run_query(&db(), schema(), "", "Total amount by region", "2026-07-06");
        assert!(!out.units.is_empty());
    }
}
