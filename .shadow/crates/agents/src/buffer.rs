//! The shared information buffer (paper §V): a thread-safe store that
//! decouples information producers from consumers, doubles its capacity
//! under pressure, and evicts superseded entries.

use crate::info::InformationUnit;
use parking_lot::RwLock;
use std::sync::Arc;

/// Buffer statistics (exercised by tests and micro-benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Units currently stored.
    pub len: usize,
    /// Current capacity.
    pub capacity: usize,
    /// Capacity doublings performed.
    pub growths: u64,
    /// Units evicted because a newer unit superseded them.
    pub evicted: u64,
}

#[derive(Debug)]
struct Inner {
    units: Vec<InformationUnit>,
    capacity: usize,
    growths: u64,
    evicted: u64,
    clock: u64,
}

/// The shared buffer. Cloning shares the underlying store.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    inner: Arc<RwLock<Inner>>,
}

impl Default for SharedBuffer {
    fn default() -> Self {
        SharedBuffer::with_capacity(8)
    }
}

impl SharedBuffer {
    /// A buffer with the given initial capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        SharedBuffer {
            inner: Arc::new(RwLock::new(Inner {
                units: Vec::with_capacity(capacity),
                capacity: capacity.max(1),
                growths: 0,
                evicted: 0,
                clock: 0,
            })),
        }
    }

    /// Deposits a unit, stamping its timestamp from the logical clock.
    /// A unit re-describing the same work — same `(role, action,
    /// data_source, description)` — supersedes the original (the paper's
    /// outdated-information clearing: information updated after execution
    /// feedback replaces the original; *different* tasks by the same
    /// agent accumulate). When full, capacity doubles.
    pub fn deposit(&self, mut unit: InformationUnit) -> u64 {
        let mut g = self.inner.write();
        g.clock += 1;
        unit.timestamp = g.clock;
        if let Some(pos) = g.units.iter().position(|u| {
            u.role == unit.role
                && u.action == unit.action
                && u.data_source == unit.data_source
                && u.description == unit.description
        }) {
            g.units.remove(pos);
            g.evicted += 1;
        }
        if g.units.len() == g.capacity {
            g.capacity *= 2;
            let additional = g.capacity - g.units.len();
            g.units.reserve(additional);
            g.growths += 1;
        }
        let ts = unit.timestamp;
        g.units.push(unit);
        ts
    }

    /// All units, oldest first.
    pub fn all(&self) -> Vec<InformationUnit> {
        self.inner.read().units.clone()
    }

    /// Units produced by any of the given roles, oldest first.
    pub fn by_roles(&self, roles: &[String]) -> Vec<InformationUnit> {
        self.inner
            .read()
            .units
            .iter()
            .filter(|u| roles.iter().any(|r| r.eq_ignore_ascii_case(&u.role)))
            .cloned()
            .collect()
    }

    /// Like [`SharedBuffer::by_roles`] but only units newer than the given
    /// timestamp — selective retrieval scopes to the current task.
    pub fn by_roles_since(&self, roles: &[String], since: u64) -> Vec<InformationUnit> {
        self.inner
            .read()
            .units
            .iter()
            .filter(|u| {
                u.timestamp > since && roles.iter().any(|r| r.eq_ignore_ascii_case(&u.role))
            })
            .cloned()
            .collect()
    }

    /// The logical clock's current value.
    pub fn now(&self) -> u64 {
        self.inner.read().clock
    }

    /// The most recent unit from a role, if any.
    pub fn latest_from(&self, role: &str) -> Option<InformationUnit> {
        self.inner
            .read()
            .units
            .iter()
            .rev()
            .find(|u| u.role.eq_ignore_ascii_case(role))
            .cloned()
    }

    /// Drops all units (a fresh query session).
    pub fn clear(&self) {
        let mut g = self.inner.write();
        g.units.clear();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> BufferStats {
        let g = self.inner.read();
        BufferStats {
            len: g.units.len(),
            capacity: g.capacity,
            growths: g.growths,
            evicted: g.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::Content;

    fn unit(role: &str, action: &str, source: &str) -> InformationUnit {
        InformationUnit {
            data_source: source.into(),
            role: role.into(),
            action: action.into(),
            description: String::new(),
            content: Content::Text("x".into()),
            timestamp: 0,
        }
    }

    #[test]
    fn deposit_and_retrieve_by_role() {
        let buf = SharedBuffer::default();
        buf.deposit(unit("sql_agent", "q", "sales"));
        buf.deposit(unit("vis_agent", "v", "sales"));
        assert_eq!(buf.all().len(), 2);
        assert_eq!(buf.by_roles(&["sql_agent".to_string()]).len(), 1);
        assert!(buf.latest_from("vis_agent").is_some());
        assert!(buf.latest_from("nobody").is_none());
    }

    #[test]
    fn supersede_evicts_old_version() {
        let buf = SharedBuffer::default();
        buf.deposit(unit("sql_agent", "q", "sales"));
        let ts2 = buf.deposit(unit("sql_agent", "q", "sales"));
        assert_eq!(buf.all().len(), 1);
        assert_eq!(buf.stats().evicted, 1);
        assert_eq!(buf.all()[0].timestamp, ts2);
        // Different source is a different entry.
        buf.deposit(unit("sql_agent", "q", "users"));
        assert_eq!(buf.all().len(), 2);
        // A different task (description) by the same agent accumulates.
        let mut other = unit("sql_agent", "q", "sales");
        other.description = "another question".into();
        buf.deposit(other);
        assert_eq!(buf.all().len(), 3);
    }

    #[test]
    fn by_roles_since_scopes_to_task() {
        let buf = SharedBuffer::default();
        buf.deposit(unit("sql_agent", "a", "s"));
        let mark = buf.now();
        let mut second = unit("sql_agent", "a", "s");
        second.description = "new".into();
        buf.deposit(second);
        let roles = vec!["sql_agent".to_string()];
        assert_eq!(buf.by_roles(&roles).len(), 2);
        assert_eq!(buf.by_roles_since(&roles, mark).len(), 1);
    }

    #[test]
    fn capacity_doubles_when_full() {
        let buf = SharedBuffer::with_capacity(2);
        for i in 0..5 {
            buf.deposit(unit("r", &format!("a{i}"), "s"));
        }
        let s = buf.stats();
        assert_eq!(s.len, 5);
        assert!(s.capacity >= 8);
        assert!(s.growths >= 2);
    }

    #[test]
    fn timestamps_are_monotone() {
        let buf = SharedBuffer::default();
        let a = buf.deposit(unit("r", "a", "s"));
        let b = buf.deposit(unit("r", "b", "s"));
        assert!(b > a);
    }

    #[test]
    fn concurrent_deposits() {
        let buf = SharedBuffer::default();
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = buf.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    b.deposit(unit("r", &format!("t{t}a{i}"), "s"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(buf.all().len(), 200);
        // Timestamps unique.
        let mut ts: Vec<u64> = buf.all().iter().map(|u| u.timestamp).collect();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), 200);
    }
}
