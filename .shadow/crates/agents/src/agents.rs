//! The specialised BI agents (paper §V, Fig. 6): SQL, DSCode, Vis,
//! Insight, Anomaly Detection, Causal Analysis, and Time-Series
//! Forecasting. Each consumes prompt-grounded context, produces a
//! structured [`InformationUnit`], and where applicable a real data frame
//! or rendered chart.

use crate::analysis::{
    compute_facts_for, first_date_column, first_numeric_column, first_string_column, linear_fit,
    numeric_column, pearson, zscores,
};
use crate::info::{Content, InformationUnit};
use crate::sandbox::run_dscript;
use datalab_frame::{AggExpr, AggFunc, DataFrame, DataType, Value};
use datalab_llm::generate::{to_dscript, to_sql};
use datalab_llm::intent::{infer_intent, Evidence};
use datalab_llm::{LanguageModel, LlmError, Prompt};
use datalab_sql::{run_sql, Database};
use datalab_telemetry::Telemetry;
use datalab_viz::{render, ChartSpec, RenderedChart};
use std::fmt;

/// Agent failures.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentError {
    /// The failing agent's role.
    pub role: String,
    /// What went wrong (fed back into retry prompts).
    pub message: String,
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed: {}", self.role, self.message)
    }
}

impl std::error::Error for AgentError {}

/// Everything an agent needs for one subtask execution.
pub struct AgentContext<'a> {
    /// Session database (base tables plus frames produced upstream).
    pub db: &'a Database,
    /// The foundation model.
    pub llm: &'a dyn LanguageModel,
    /// Schema evidence lines for the base tables.
    pub schema_section: String,
    /// Retrieved domain knowledge lines.
    pub knowledge_section: String,
    /// Inter-agent context (buffer units, rendered per the protocol).
    pub context_section: String,
    /// Current date (ISO) for temporal grounding.
    pub current_date: String,
    /// Retries on execution/parse failure.
    pub max_retries: usize,
    /// The variable/table the conversation is currently focused on
    /// (usually the most recently produced frame).
    pub focus_table: Option<String>,
    /// Observability pipeline shared with the proxy and the platform
    /// (retry counters, sandbox spans). A fresh handle is a no-op sink.
    pub telemetry: Telemetry,
}

impl<'a> AgentContext<'a> {
    /// The frame an analysis agent should work on: the focus table when
    /// set and present, else the first base table.
    fn focus_frame(&self) -> Result<(String, DataFrame), AgentError> {
        let err = |m: &str| AgentError {
            role: "context".into(),
            message: m.into(),
        };
        if let Some(f) = &self.focus_table {
            if let Ok(df) = self.db.get(f) {
                return Ok((f.clone(), df.clone()));
            }
        }
        let name = self
            .db
            .table_names()
            .first()
            .cloned()
            .ok_or_else(|| err("no tables available"))?;
        let df = self.db.get(&name).map_err(|e| err(&e.to_string()))?.clone();
        Ok((name, df))
    }

    /// Like [`AgentContext::focus_frame`], but requires the frame to
    /// satisfy `pred` (e.g. "has a date column"); when the focus frame
    /// does not, falls back to the first session table that does. Agents
    /// use this to route around upstream frames missing what they need
    /// (a grouped result has no date column to forecast over).
    fn frame_where<F>(&self, pred: F) -> Result<(String, DataFrame), AgentError>
    where
        F: Fn(&DataFrame) -> bool,
    {
        if let Some(f) = &self.focus_table {
            if let Ok(df) = self.db.get(f) {
                if pred(df) {
                    return Ok((f.clone(), df.clone()));
                }
            }
        }
        for name in self.db.table_names() {
            if let Ok(df) = self.db.get(name) {
                if pred(df) {
                    return Ok((name.clone(), df.clone()));
                }
            }
        }
        Err(AgentError {
            role: "context".into(),
            message: "no table satisfies the agent's data requirements".into(),
        })
    }
}

/// What an agent produced.
#[derive(Debug, Clone)]
pub struct AgentOutput {
    /// The structured unit to deposit into the shared buffer.
    pub unit: InformationUnit,
    /// A produced data frame, registered into the session database.
    pub frame: Option<DataFrame>,
    /// A rendered chart, when the agent draws one.
    pub chart: Option<RenderedChart>,
    /// Human-facing answer text.
    pub answer: String,
    /// True when the model transport was down (breaker open or retries
    /// exhausted) and this output came from the rule-based fallback path.
    pub degraded: bool,
}

/// The common agent interface.
pub trait BiAgent {
    /// Stable role identifier (e.g. `sql_agent`).
    fn role(&self) -> &'static str;
    /// Executes one subtask.
    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError>;
}

/// Renders a frame as the evidence lines downstream agents ground on.
pub fn frame_evidence(var: &str, df: &DataFrame) -> String {
    let cols: Vec<String> = df
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{} ({})", f.name, f.dtype))
        .collect();
    let mut out = format!("table {var}: {}\n", cols.join(", "));
    // A compact row preview: downstream summarisation and answer checks
    // need the actual numbers, not only the schema.
    for i in 0..df.n_rows().min(6) {
        let row: Vec<String> = (0..df.n_cols())
            .map(|c| df.column_at(c)[i].render())
            .collect();
        out.push_str(&format!("row: {}\n", row.join(" | ")));
    }
    for field in df.schema().fields() {
        if field.dtype == DataType::Str {
            if let Ok(vals) = df.distinct_values(&field.name) {
                if !vals.is_empty() && vals.len() <= 12 {
                    let rendered: Vec<String> = vals.iter().map(Value::render).collect();
                    out.push_str(&format!(
                        "values {var}.{}: {}\n",
                        field.name,
                        rendered.join(", ")
                    ));
                }
            }
        }
    }
    out
}

/// Builds the same grounding evidence the simulated model derives from a
/// rendered prompt, directly from the agent context sections. The
/// degraded fallback paths compile artifacts from this evidence without
/// any model call, so they stay available when the transport is down.
fn context_evidence(ctx: &AgentContext<'_>) -> Evidence {
    let mut ev = Evidence::from_schema(&ctx.schema_section);
    ev.absorb_schema(&ctx.context_section);
    ev.absorb_knowledge(&ctx.knowledge_section);
    ev.absorb_knowledge(&ctx.context_section);
    if ev.current_date.is_none() && !ctx.current_date.trim().is_empty() {
        ev.current_date = Some(ctx.current_date.trim().to_string());
    }
    ev
}

fn base_prompt(task_label: &str, task: &str, ctx: &AgentContext<'_>) -> Prompt {
    Prompt::new(task_label)
        .section("schema", ctx.schema_section.clone())
        .section("knowledge", ctx.knowledge_section.clone())
        .section("context", ctx.context_section.clone())
        .section("current_date", ctx.current_date.clone())
        .section("question", task)
}

fn unit(
    role: &str,
    action: &str,
    source: &str,
    description: String,
    content: Content,
) -> InformationUnit {
    InformationUnit {
        data_source: source.to_string(),
        role: role.to_string(),
        action: action.to_string(),
        description,
        content,
        timestamp: 0,
    }
}

// ---------------------------------------------------------------------------
// SQL agent
// ---------------------------------------------------------------------------

/// Generates and executes SQL (NL2SQL), retrying on execution errors with
/// feedback. Transport faults are distinguished from semantic failures:
/// a retryable fault re-attempts the same prompt without poisoning the
/// feedback section, and a terminal transport error (breaker open,
/// retries exhausted) switches to the rule-based degraded path.
#[derive(Debug, Default)]
pub struct SqlAgent;

impl SqlAgent {
    /// Rule-based fallback: ground intent on the context evidence and
    /// compile SQL without the model.
    fn degraded(
        &self,
        task: &str,
        ctx: &AgentContext<'_>,
        cause: &LlmError,
    ) -> Result<AgentOutput, AgentError> {
        let ev = context_evidence(ctx);
        let intent = infer_intent(task, &ev);
        let sql = to_sql(&intent, &ev);
        match run_sql(&sql, ctx.db) {
            Ok(df) => {
                let var = "sql_agent_result";
                let evidence = frame_evidence(var, &df);
                let source = datalab_sql::parse_select(&sql)
                    .ok()
                    .and_then(|s| s.from.map(|t| t.binding_name().to_string()))
                    .unwrap_or_else(|| "unknown".into());
                let u = unit(
                    self.role(),
                    "generate_sql_query",
                    &source,
                    format!(
                        "model transport down ({}); compiled rule-based SQL over {source}: {sql}",
                        cause.kind()
                    ),
                    Content::Table(format!("-- sql (degraded): {sql}\n{evidence}")),
                );
                Ok(AgentOutput {
                    unit: u,
                    frame: Some(df.clone()),
                    chart: None,
                    answer: df.to_table_string(10),
                    degraded: true,
                })
            }
            Err(e) => Err(AgentError {
                role: self.role().into(),
                message: format!("model transport failed ({cause}); rule-based SQL failed: {e}"),
            }),
        }
    }
}

impl BiAgent for SqlAgent {
    fn role(&self) -> &'static str {
        "sql_agent"
    }

    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let mut feedback: Option<String> = None;
        let mut last_err = String::new();
        for attempt in 0..=ctx.max_retries {
            if attempt > 0 {
                ctx.telemetry.metrics().incr("sql.retries", 1);
                ctx.telemetry.record_event(
                    datalab_telemetry::EventKind::Retry,
                    format!("sql_agent attempt {attempt}: {last_err}"),
                );
            }
            let mut prompt = base_prompt("nl2sql", task, ctx);
            if let Some(fb) = &feedback {
                prompt = prompt.section("feedback", fb.clone());
            }
            let sql = match ctx.llm.try_complete(&prompt.render()) {
                Ok(text) => text,
                Err(e) if e.is_retryable() && attempt < ctx.max_retries => {
                    last_err = e.to_string();
                    continue;
                }
                Err(e) => return self.degraded(task, ctx, &e),
            };
            match run_sql(&sql, ctx.db) {
                Ok(df) => {
                    // Must match the session variable the proxy registers
                    // (`<role>_result`) so downstream agents can load it.
                    let var = "sql_agent_result";
                    let evidence = frame_evidence(var, &df);
                    let source = datalab_sql::parse_select(&sql)
                        .ok()
                        .and_then(|s| s.from.map(|t| t.binding_name().to_string()))
                        .unwrap_or_else(|| "unknown".into());
                    let u = unit(
                        self.role(),
                        "generate_sql_query",
                        &source,
                        format!("wrote and executed SQL extracting data from {source}: {sql}"),
                        Content::Table(format!("-- sql: {sql}\n{evidence}")),
                    );
                    return Ok(AgentOutput {
                        unit: u,
                        frame: Some(df.clone()),
                        chart: None,
                        answer: df.to_table_string(10),
                        degraded: false,
                    });
                }
                Err(e) => {
                    last_err = e.to_string();
                    feedback = Some(format!("previous SQL `{sql}` failed: {last_err}"));
                }
            }
        }
        Err(AgentError {
            role: self.role().into(),
            message: last_err,
        })
    }
}

// ---------------------------------------------------------------------------
// DS code agent
// ---------------------------------------------------------------------------

/// Generates and executes dscript pipelines (NL2DSCode) in the sandbox.
#[derive(Debug, Default)]
pub struct CodeAgent;

impl CodeAgent {
    /// Rule-based fallback: compile a dscript pipeline from the context
    /// evidence without the model.
    fn degraded(
        &self,
        task: &str,
        ctx: &AgentContext<'_>,
        cause: &LlmError,
    ) -> Result<AgentOutput, AgentError> {
        let ev = context_evidence(ctx);
        let intent = infer_intent(task, &ev);
        let code = to_dscript(&intent);
        let sandboxed = {
            let _span = ctx.telemetry.span("sandbox.run");
            run_dscript(&code, ctx.db)
        };
        match sandboxed {
            Ok(df) => {
                let var = "code_agent_result";
                let evidence = frame_evidence(var, &df);
                let source = code
                    .lines()
                    .find_map(|l| l.trim().strip_prefix("load "))
                    .unwrap_or("unknown")
                    .to_string();
                let u = unit(
                    self.role(),
                    "generate_ds_code",
                    &source,
                    format!(
                        "model transport down ({}); compiled rule-based pipeline over {source}",
                        cause.kind()
                    ),
                    Content::Table(format!("-- code (degraded):\n{code}\n{evidence}")),
                );
                Ok(AgentOutput {
                    unit: u,
                    frame: Some(df.clone()),
                    chart: None,
                    answer: df.to_table_string(10),
                    degraded: true,
                })
            }
            Err(e) => Err(AgentError {
                role: self.role().into(),
                message: format!(
                    "model transport failed ({cause}); rule-based pipeline failed: {e}"
                ),
            }),
        }
    }
}

impl BiAgent for CodeAgent {
    fn role(&self) -> &'static str {
        "code_agent"
    }

    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let mut feedback: Option<String> = None;
        let mut last_err = String::new();
        for attempt in 0..=ctx.max_retries {
            if attempt > 0 {
                ctx.telemetry.metrics().incr("sandbox.retries", 1);
                ctx.telemetry.record_event(
                    datalab_telemetry::EventKind::Retry,
                    format!("code_agent attempt {attempt}: {last_err}"),
                );
            }
            let mut prompt = base_prompt("nl2code", task, ctx);
            if let Some(fb) = &feedback {
                prompt = prompt.section("feedback", fb.clone());
            }
            let code = match ctx.llm.try_complete(&prompt.render()) {
                Ok(text) => text,
                Err(e) if e.is_retryable() && attempt < ctx.max_retries => {
                    last_err = e.to_string();
                    continue;
                }
                Err(e) => return self.degraded(task, ctx, &e),
            };
            let sandboxed = {
                let _span = ctx.telemetry.span("sandbox.run");
                run_dscript(&code, ctx.db)
            };
            match sandboxed {
                Ok(df) => {
                    let var = "code_agent_result";
                    let evidence = frame_evidence(var, &df);
                    let source = code
                        .lines()
                        .find_map(|l| l.trim().strip_prefix("load "))
                        .unwrap_or("unknown")
                        .to_string();
                    let u = unit(
                        self.role(),
                        "generate_ds_code",
                        &source,
                        format!("wrote and ran a data pipeline over {source}"),
                        Content::Table(format!("-- code:\n{code}\n{evidence}")),
                    );
                    return Ok(AgentOutput {
                        unit: u,
                        frame: Some(df.clone()),
                        chart: None,
                        answer: df.to_table_string(10),
                        degraded: false,
                    });
                }
                Err(e) => {
                    last_err = e.to_string();
                    ctx.telemetry.record_event(
                        datalab_telemetry::EventKind::SandboxFailure,
                        format!("code_agent: {last_err}"),
                    );
                    feedback = Some(format!("previous pipeline failed: {last_err}\n{code}"));
                }
            }
        }
        Err(AgentError {
            role: self.role().into(),
            message: last_err,
        })
    }
}

// ---------------------------------------------------------------------------
// Visualization agent
// ---------------------------------------------------------------------------

/// Generates chart specs (NL2VIS), validates and renders them.
#[derive(Debug, Default)]
pub struct VisAgent;

impl VisAgent {
    /// A sensible default chart over the focus frame ("plot it" with no
    /// further grounding — first categorical x, first numeric y),
    /// honouring the requested mark. Used both when every model-proposed
    /// spec failed semantically (`degraded: false`) and when the model
    /// transport itself is down (`degraded: true`).
    fn default_chart(
        &self,
        task: &str,
        ctx: &AgentContext<'_>,
        last_err: &str,
        degraded: bool,
    ) -> Result<AgentOutput, AgentError> {
        let lower_task = task.to_lowercase();
        let mark = if lower_task.contains("pie") || lower_task.contains("share") {
            datalab_viz::Mark::Pie
        } else if lower_task.contains("trend") || lower_task.contains("line chart") {
            datalab_viz::Mark::Line
        } else {
            datalab_viz::Mark::Bar
        };
        if let Ok((name, df)) = ctx.frame_where(|df| {
            first_numeric_column(df).is_some() && first_string_column(df).is_some()
        }) {
            let spec = ChartSpec {
                mark,
                data: name.clone(),
                x: first_string_column(&df).map(|f| datalab_viz::FieldDef {
                    field: f,
                    aggregate: None,
                }),
                y: first_numeric_column(&df).map(|f| datalab_viz::FieldDef {
                    field: f,
                    aggregate: Some("sum".into()),
                }),
                color: None,
                filters: vec![],
                limit: None,
                sort_desc: None,
                title: None,
            };
            if let Ok(chart) = render(&spec, &df) {
                let u = unit(
                    self.role(),
                    "generate_visualization",
                    &name,
                    format!("rendered a default {} chart of {name}", mark.name()),
                    Content::Chart(spec.to_json()),
                );
                return Ok(AgentOutput {
                    unit: u,
                    frame: None,
                    chart: Some(chart),
                    answer: format!("rendered default {} chart", mark.name()),
                    degraded,
                });
            }
        }
        Err(AgentError {
            role: self.role().into(),
            message: last_err.to_string(),
        })
    }
}

impl BiAgent for VisAgent {
    fn role(&self) -> &'static str {
        "vis_agent"
    }

    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let mut feedback: Option<String> = None;
        let mut last_err = String::new();
        for attempt in 0..=ctx.max_retries {
            if attempt > 0 {
                ctx.telemetry.metrics().incr("vis.retries", 1);
                ctx.telemetry.record_event(
                    datalab_telemetry::EventKind::Retry,
                    format!("vis_agent attempt {attempt}: {last_err}"),
                );
            }
            let mut prompt = base_prompt("nl2vis", task, ctx);
            if let Some(fb) = &feedback {
                prompt = prompt.section("feedback", fb.clone());
            }
            let spec_json = match ctx.llm.try_complete(&prompt.render()) {
                Ok(text) => text,
                Err(e) if e.is_retryable() && attempt < ctx.max_retries => {
                    last_err = e.to_string();
                    continue;
                }
                Err(e) => return self.default_chart(task, ctx, &e.to_string(), true),
            };
            let spec = match ChartSpec::from_json(&spec_json) {
                Ok(s) => s,
                Err(e) => {
                    last_err = e.to_string();
                    feedback = Some(format!("previous spec was invalid: {last_err}"));
                    continue;
                }
            };
            // Resolve the data source: the spec's table when known,
            // otherwise the focus frame.
            let data = match ctx.db.get(&spec.data) {
                Ok(df) => df.clone(),
                Err(_) => match ctx.focus_frame() {
                    Ok((_, df)) => df,
                    Err(e) => return Err(e),
                },
            };
            match render(&spec, &data) {
                Ok(chart) => {
                    let u = unit(
                        self.role(),
                        "generate_visualization",
                        &spec.data,
                        format!(
                            "rendered a {} chart of {} with {} points",
                            spec.mark.name(),
                            spec.data,
                            chart.points.len()
                        ),
                        Content::Chart(spec.to_json()),
                    );
                    return Ok(AgentOutput {
                        unit: u,
                        frame: None,
                        chart: Some(chart),
                        answer: format!("rendered {} chart", spec.mark.name()),
                        degraded: false,
                    });
                }
                Err(e) => {
                    last_err = e.to_string();
                    feedback = Some(format!("previous spec failed to render: {last_err}"));
                }
            }
        }
        // Last resort after semantic failures (not a transport outage).
        self.default_chart(task, ctx, &last_err, false)
    }
}

// ---------------------------------------------------------------------------
// Insight agent
// ---------------------------------------------------------------------------

/// End-to-end insight discovery: computes facts about the focus data and
/// narrates them (NL2Insight).
#[derive(Debug, Default)]
pub struct InsightAgent;

impl BiAgent for InsightAgent {
    fn role(&self) -> &'static str {
        "insight_agent"
    }

    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        // Ground the analysis on what the question asks about: table,
        // measure, and dimension inferred from the prompt evidence.
        let ev = context_evidence(ctx);
        let intent = infer_intent(task, &ev);
        let asked_table = intent.tables().into_iter().next();
        // Focus (an upstream extraction) outranks the table the question
        // mentions: when a prior stage narrowed the data, the insights
        // should describe the narrowed data.
        let focus = ctx
            .focus_table
            .as_deref()
            .and_then(|f| ctx.db.get(f).ok().map(|df| (f.to_string(), df.clone())))
            .filter(|(_, df)| first_numeric_column(df).is_some() && df.n_rows() >= 1);
        let (name, df) = match focus {
            Some(hit) => hit,
            None => match asked_table.as_deref().and_then(|t| ctx.db.get(t).ok()) {
                Some(frame) if first_numeric_column(frame).is_some() => {
                    (asked_table.expect("matched above"), frame.clone())
                }
                _ => {
                    ctx.frame_where(|df| first_numeric_column(df).is_some() && df.n_rows() >= 1)?
                }
            },
        };
        let measure = intent
            .measures
            .first()
            .and_then(|m| m.column.as_ref())
            .map(|c| c.column.clone());
        let dim = intent.dimensions.first().map(|d| d.column.clone());
        let facts = compute_facts_for(&df, measure.as_deref(), dim.as_deref());
        if facts.is_empty() {
            return Err(AgentError {
                role: self.role().into(),
                message: format!("no numeric measures in {name} to analyse"),
            });
        }
        let facts_text: String = facts
            .iter()
            .map(|f| f.statement.clone())
            .collect::<Vec<_>>()
            .join("\n");
        // The narration is the only model call; the facts themselves are
        // computed. When the transport is down, serve the raw facts as
        // the (degraded) narration instead of failing the whole subtask.
        let (summary, degraded) = match ctx.llm.try_complete(
            &Prompt::new("summarize")
                .section("facts", facts_text.clone())
                .section("question", task)
                .render(),
        ) {
            Ok(text) => (text, false),
            Err(_) => {
                let fallback: Vec<&str> = facts_text.lines().take(12).collect();
                (fallback.join(" "), true)
            }
        };
        let u = unit(
            self.role(),
            "discover_insights",
            &name,
            format!("derived {} insights from {name}", facts.len()),
            Content::Text(format!("{facts_text}\nsummary: {summary}")),
        );
        Ok(AgentOutput {
            unit: u,
            frame: None,
            chart: None,
            answer: summary,
            degraded,
        })
    }
}

// ---------------------------------------------------------------------------
// Anomaly detection agent
// ---------------------------------------------------------------------------

/// Flags measure values with |z| above threshold.
#[derive(Debug)]
pub struct AnomalyAgent {
    /// Z-score threshold (2.0 default).
    pub threshold: f64,
}

impl Default for AnomalyAgent {
    fn default() -> Self {
        // For a single outlier among n points the z-score is bounded by
        // (n-1)/sqrt(n) (~2.47 at n=8); BI series are short, so 2.0 is
        // the practical spike threshold.
        AnomalyAgent { threshold: 2.0 }
    }
}

impl BiAgent for AnomalyAgent {
    fn role(&self) -> &'static str {
        "anomaly_agent"
    }

    fn run(&self, _task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let (name, df) = ctx.frame_where(|df| first_numeric_column(df).is_some())?;
        let measure = first_numeric_column(&df).ok_or_else(|| AgentError {
            role: self.role().into(),
            message: format!("no numeric column in {name}"),
        })?;
        let (rows, vals) = numeric_column(&df, &measure).map_err(|e| AgentError {
            role: self.role().into(),
            message: e.to_string(),
        })?;
        let z = zscores(&vals);
        let label_col = first_date_column(&df).or_else(|| first_string_column(&df));
        let mut lines = Vec::new();
        for (i, zi) in z.iter().enumerate() {
            if zi.abs() >= self.threshold {
                let row = rows[i];
                let label = label_col
                    .as_deref()
                    .and_then(|c| df.column(c).ok().map(|col| col[row].render()))
                    .unwrap_or_else(|| format!("row {row}"));
                lines.push(format!(
                    "anomaly: {measure}={} at {label} (z={zi:.2})",
                    vals[i]
                ));
            }
        }
        let description = if lines.is_empty() {
            format!("no anomalies detected in {measure} of {name}")
        } else {
            format!("detected {} anomalies in {measure} of {name}", lines.len())
        };
        let text = if lines.is_empty() {
            description.clone()
        } else {
            lines.join("\n")
        };
        let u = unit(
            self.role(),
            "detect_anomalies",
            &name,
            description.clone(),
            Content::Text(text),
        );
        Ok(AgentOutput {
            unit: u,
            frame: None,
            chart: None,
            answer: description,
            degraded: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Causal analysis agent
// ---------------------------------------------------------------------------

/// Finds the numeric column most correlated with the target measure.
#[derive(Debug, Default)]
pub struct CausalAgent;

impl BiAgent for CausalAgent {
    fn role(&self) -> &'static str {
        "causal_agent"
    }

    fn run(&self, task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let (name, df) = ctx.frame_where(|df| {
            df.schema()
                .fields()
                .iter()
                .filter(|f| f.dtype.is_numeric())
                .count()
                >= 2
        })?;
        let numeric: Vec<String> = df
            .schema()
            .fields()
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.clone())
            .collect();
        if numeric.len() < 2 {
            return Err(AgentError {
                role: self.role().into(),
                message: format!("{name} has fewer than two numeric columns"),
            });
        }
        // Target: a numeric column named in the task, else the first.
        let lower = task.to_lowercase();
        let target = numeric
            .iter()
            .find(|c| lower.contains(&c.to_lowercase()))
            .cloned()
            .unwrap_or_else(|| numeric[0].clone());
        let (_, tvals) = numeric_column(&df, &target).map_err(|e| AgentError {
            role: self.role().into(),
            message: e.to_string(),
        })?;
        let mut best: Option<(String, f64)> = None;
        let mut lines = Vec::new();
        for c in &numeric {
            if c.eq_ignore_ascii_case(&target) {
                continue;
            }
            let (_, cvals) = numeric_column(&df, c).map_err(|e| AgentError {
                role: self.role().into(),
                message: e.to_string(),
            })?;
            let r = pearson(&tvals, &cvals);
            lines.push(format!("correlation of {target} with {c}: {r:.3}"));
            match &best {
                Some((_, br)) if br.abs() >= r.abs() => {}
                _ => best = Some((c.clone(), r)),
            }
        }
        let (driver, r) = best.ok_or_else(|| AgentError {
            role: self.role().into(),
            message: "no candidate drivers".into(),
        })?;
        let description = format!(
            "strongest driver of {target} is {driver} (r={r:.3}, {})",
            if r >= 0.0 { "positive" } else { "negative" }
        );
        lines.push(description.clone());
        let u = unit(
            self.role(),
            "causal_analysis",
            &name,
            description.clone(),
            Content::Text(lines.join("\n")),
        );
        Ok(AgentOutput {
            unit: u,
            frame: None,
            chart: None,
            answer: description,
            degraded: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Time-series forecasting agent
// ---------------------------------------------------------------------------

/// Aggregates the measure over the date column and extrapolates with a
/// least-squares trend.
#[derive(Debug)]
pub struct ForecastAgent {
    /// Number of future periods to forecast.
    pub horizon: usize,
}

impl Default for ForecastAgent {
    fn default() -> Self {
        ForecastAgent { horizon: 3 }
    }
}

impl BiAgent for ForecastAgent {
    fn role(&self) -> &'static str {
        "forecast_agent"
    }

    fn run(&self, _task: &str, ctx: &AgentContext<'_>) -> Result<AgentOutput, AgentError> {
        let (name, df) = ctx.frame_where(|df| {
            first_date_column(df).is_some() && first_numeric_column(df).is_some()
        })?;
        let date_col = first_date_column(&df).ok_or_else(|| AgentError {
            role: self.role().into(),
            message: format!("no date column in {name}"),
        })?;
        let measure = first_numeric_column(&df).ok_or_else(|| AgentError {
            role: self.role().into(),
            message: format!("no numeric column in {name}"),
        })?;
        let series = df
            .group_by(
                &[date_col.as_str()],
                &[AggExpr::new(AggFunc::Sum, &measure, "__v")],
            )
            .and_then(|g| g.sort_by(&[(date_col.as_str(), true)]))
            .map_err(|e| AgentError {
                role: self.role().into(),
                message: e.to_string(),
            })?;
        let dates: Vec<i64> = series
            .column(&date_col)
            .map_err(|e| AgentError {
                role: self.role().into(),
                message: e.to_string(),
            })?
            .iter()
            .filter_map(|v| v.as_date().map(|d| d.to_epoch_days()))
            .collect();
        let (_, vals) = numeric_column(&series, "__v").map_err(|e| AgentError {
            role: self.role().into(),
            message: e.to_string(),
        })?;
        if dates.len() < 3 || dates.len() != vals.len() {
            return Err(AgentError {
                role: self.role().into(),
                message: format!("not enough history in {name} to forecast"),
            });
        }
        let xs: Vec<f64> = dates.iter().map(|d| *d as f64).collect();
        let (slope, intercept) = linear_fit(&xs, &vals);
        // Period spacing: median gap between observations.
        let mut gaps: Vec<i64> = dates.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let step = gaps.get(gaps.len() / 2).copied().unwrap_or(30).max(1);
        let last = *dates.last().expect("nonempty");
        let mut out = DataFrame::from_columns(vec![
            ("date", DataType::Date, vec![]),
            ("forecast", DataType::Float, vec![]),
        ])
        .expect("static schema");
        let mut lines = Vec::new();
        for k in 1..=self.horizon {
            let x = (last + step * k as i64) as f64;
            let y = slope * x + intercept;
            let date = datalab_frame::Date::from_epoch_days(last + step * k as i64);
            out.push_row(vec![Value::Date(date), Value::Float(y)])
                .expect("schema matches");
            lines.push(format!("forecast {date}: {y:.2}"));
        }
        let direction = if slope > 0.0 { "upward" } else { "downward" };
        let description = format!(
            "forecast {measure} of {name} for {} periods ({direction} trend)",
            self.horizon
        );
        let u = unit(
            self.role(),
            "forecast_timeseries",
            &name,
            description.clone(),
            Content::Text(lines.join("\n")),
        );
        Ok(AgentOutput {
            unit: u,
            frame: Some(out),
            chart: None,
            answer: description,
            degraded: false,
        })
    }
}

/// Constructs the agent for a role label.
pub fn agent_for_role(role: &str) -> Option<Box<dyn BiAgent>> {
    match role {
        "sql_agent" => Some(Box::new(SqlAgent)),
        "code_agent" => Some(Box::new(CodeAgent)),
        "vis_agent" => Some(Box::new(VisAgent)),
        "insight_agent" => Some(Box::new(InsightAgent)),
        "anomaly_agent" => Some(Box::new(AnomalyAgent::default())),
        "causal_agent" => Some(Box::new(CausalAgent)),
        "forecast_agent" => Some(Box::new(ForecastAgent::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::Date;
    use datalab_llm::SimLlm;

    fn db() -> Database {
        let mut db = Database::new();
        let dates: Vec<Value> = (0..8)
            .map(|i| Value::Date(Date::parse("2024-01-01").unwrap().add_days(i * 30)))
            .collect();
        db.insert(
            "sales",
            DataFrame::from_columns(vec![
                (
                    "region",
                    DataType::Str,
                    (0..8)
                        .map(|i| {
                            if i % 2 == 0 {
                                "east".into()
                            } else {
                                "west".into()
                            }
                        })
                        .collect(),
                ),
                (
                    "amount",
                    DataType::Int,
                    vec![
                        10.into(),
                        12.into(),
                        14.into(),
                        16.into(),
                        18.into(),
                        20.into(),
                        22.into(),
                        200.into(),
                    ],
                ),
                (
                    "cost",
                    DataType::Int,
                    vec![
                        5.into(),
                        6.into(),
                        7.into(),
                        8.into(),
                        9.into(),
                        10.into(),
                        11.into(),
                        100.into(),
                    ],
                ),
                ("day", DataType::Date, dates),
            ])
            .unwrap(),
        );
        db
    }

    fn ctx<'a>(db: &'a Database, llm: &'a SimLlm) -> AgentContext<'a> {
        AgentContext {
            db,
            llm,
            schema_section: "table sales: region (str), amount (int), cost (int), day (date)\nvalues sales.region: east, west"
                .into(),
            knowledge_section: String::new(),
            context_section: String::new(),
            current_date: "2026-07-06".into(),
            max_retries: 3,
            focus_table: None,
            telemetry: Telemetry::new(),
        }
    }

    #[test]
    fn sql_agent_runs_and_reports_evidence() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = SqlAgent
            .run("total amount by region", &ctx(&db, &llm))
            .unwrap();
        let df = out.frame.unwrap();
        assert_eq!(df.n_rows(), 2);
        assert!(out.unit.content.text().contains("table sql_agent_result:"));
        assert_eq!(out.unit.role, "sql_agent");
    }

    #[test]
    fn code_agent_executes_pipeline() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = CodeAgent
            .run("average cost by region", &ctx(&db, &llm))
            .unwrap();
        let df = out.frame.unwrap();
        assert_eq!(df.n_rows(), 2);
        assert!(out.unit.content.text().contains("-- code:"));
    }

    #[test]
    fn vis_agent_renders_chart() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = VisAgent
            .run("bar chart of total amount by region", &ctx(&db, &llm))
            .unwrap();
        let chart = out.chart.unwrap();
        assert_eq!(chart.points.len(), 2);
    }

    #[test]
    fn insight_agent_summarises_facts() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = InsightAgent
            .run("what do the sales look like", &ctx(&db, &llm))
            .unwrap();
        assert!(
            out.unit.content.text().contains("top_category")
                || out.unit.content.text().contains("highest total")
        );
    }

    #[test]
    fn anomaly_agent_flags_spike() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = AnomalyAgent::default()
            .run("find anomalies", &ctx(&db, &llm))
            .unwrap();
        assert!(
            out.unit.content.text().contains("anomaly: amount=200"),
            "{}",
            out.unit.content.text()
        );
    }

    #[test]
    fn causal_agent_finds_driver() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = CausalAgent
            .run("what drives amount", &ctx(&db, &llm))
            .unwrap();
        assert!(out.answer.contains("cost"), "{}", out.answer);
        assert!(out.answer.contains("positive"));
    }

    #[test]
    fn forecast_agent_extrapolates_trend() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = ForecastAgent { horizon: 2 }
            .run("forecast amount", &ctx(&db, &llm))
            .unwrap();
        let f = out.frame.unwrap();
        assert_eq!(f.n_rows(), 2);
        assert!(out.answer.contains("upward"));
    }

    #[test]
    fn focus_table_directs_analysis() {
        let mut db = db();
        db.insert(
            "tiny",
            DataFrame::from_columns(vec![(
                "x",
                DataType::Int,
                vec![1.into(), 2.into(), 3.into()],
            )])
            .unwrap(),
        );
        let llm = SimLlm::gpt4();
        let mut c = ctx(&db, &llm);
        c.focus_table = Some("tiny".into());
        let out = InsightAgent.run("describe", &c).unwrap();
        assert_eq!(out.unit.data_source, "tiny");
    }

    /// A model whose transport is terminally down: the infallible surface
    /// returns a sentinel, the fallible one reports the breaker open.
    struct DownLlm;
    impl LanguageModel for DownLlm {
        fn name(&self) -> &str {
            "down"
        }
        fn complete(&self, _prompt: &str) -> String {
            "<<llm-error:breaker_open>>".into()
        }
        fn try_complete(&self, _prompt: &str) -> Result<String, LlmError> {
            Err(LlmError::BreakerOpen)
        }
    }

    fn down_ctx<'a>(db: &'a Database, llm: &'a DownLlm) -> AgentContext<'a> {
        AgentContext {
            db,
            llm,
            schema_section: "table sales: region (str), amount (int), cost (int), day (date)\nvalues sales.region: east, west"
                .into(),
            knowledge_section: String::new(),
            context_section: String::new(),
            current_date: "2026-07-06".into(),
            max_retries: 3,
            focus_table: None,
            telemetry: Telemetry::new(),
        }
    }

    #[test]
    fn sql_agent_degrades_to_rule_based_sql_when_transport_is_down() {
        let db = db();
        let llm = DownLlm;
        let out = SqlAgent
            .run("total amount by region", &down_ctx(&db, &llm))
            .unwrap();
        assert!(out.degraded);
        assert_eq!(out.frame.unwrap().n_rows(), 2);
        assert!(
            out.unit.content.text().contains("-- sql (degraded):"),
            "{}",
            out.unit.content.text()
        );
        assert!(out.unit.description.contains("breaker_open"));
        // The fallback never consumed the poisoned infallible surface.
        assert!(!out.answer.contains("<<llm-error"));
    }

    #[test]
    fn code_agent_degrades_to_rule_based_pipeline_when_transport_is_down() {
        let db = db();
        let llm = DownLlm;
        let out = CodeAgent
            .run("average cost by region", &down_ctx(&db, &llm))
            .unwrap();
        assert!(out.degraded);
        assert_eq!(out.frame.unwrap().n_rows(), 2);
        assert!(out.unit.content.text().contains("-- code (degraded):"));
    }

    #[test]
    fn vis_agent_degrades_to_default_chart_when_transport_is_down() {
        let db = db();
        let llm = DownLlm;
        let out = VisAgent
            .run("bar chart of total amount by region", &down_ctx(&db, &llm))
            .unwrap();
        assert!(out.degraded);
        assert!(out.chart.is_some());
        assert!(out.answer.contains("default"));
    }

    #[test]
    fn insight_agent_serves_raw_facts_when_transport_is_down() {
        let db = db();
        let llm = DownLlm;
        let out = InsightAgent
            .run("what do the sales look like", &down_ctx(&db, &llm))
            .unwrap();
        assert!(out.degraded);
        assert!(!out.answer.is_empty());
        assert!(!out.answer.contains("<<llm-error"));
    }

    #[test]
    fn healthy_transport_is_never_degraded() {
        let db = db();
        let llm = SimLlm::gpt4();
        let out = SqlAgent
            .run("total amount by region", &ctx(&db, &llm))
            .unwrap();
        assert!(!out.degraded);
        let out = InsightAgent
            .run("what do the sales look like", &ctx(&db, &llm))
            .unwrap();
        assert!(!out.degraded);
    }

    #[test]
    fn agent_factory_covers_all_roles() {
        for role in [
            "sql_agent",
            "code_agent",
            "vis_agent",
            "insight_agent",
            "anomaly_agent",
            "causal_agent",
            "forecast_agent",
        ] {
            assert!(agent_for_role(role).is_some(), "{role}");
        }
        assert!(agent_for_role("chaos_agent").is_none());
    }
}
