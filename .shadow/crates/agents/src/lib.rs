//! # datalab-agents
//!
//! DataLab's **Inter-Agent Communication** module and the agents
//! themselves (paper §V):
//!
//! - [`info`] — the six-field structured information unit (and its lossy
//!   natural-language rendering used by ablation S2),
//! - [`buffer`] — the shared information buffer with capacity doubling
//!   and superseded-entry eviction,
//! - [`fsm`] — the Wait/Execution/Finish protocol FSM with selective
//!   information-flow edges,
//! - [`sandbox`] — the dscript executable environment (Python-sandbox
//!   substitute),
//! - [`analysis`] — real statistics powering the analysis agents,
//! - [`agents`] — SQL / DSCode / Vis / Insight / Anomaly / Causal /
//!   Forecast agents,
//! - [`proxy`] — the proxy agent orchestrating plans over the FSM,
//! - [`baselines`] — the Table I comparator pipelines (DAIL-SQL, DIN-SQL,
//!   CoML, Code Interpreter, LIDA, Chat2Vis, AutoGen, AgentPoirot).

#![warn(missing_docs)]

pub mod agents;
pub mod analysis;
pub mod baselines;
pub mod buffer;
pub mod fsm;
pub mod info;
pub mod proxy;
pub mod sandbox;

pub use agents::{
    agent_for_role, frame_evidence, AgentContext, AgentError, AgentOutput, AnomalyAgent, BiAgent,
    CausalAgent, CodeAgent, ForecastAgent, InsightAgent, SqlAgent, VisAgent,
};
pub use analysis::{compute_facts, linear_fit, pearson, zscores, Fact};
pub use buffer::{BufferStats, SharedBuffer};
pub use fsm::{AgentState, Fsm};
pub use info::{Content, InformationUnit};
pub use proxy::{CommunicationConfig, ProxyAgent, ProxyOutcome};
pub use sandbox::{run_dscript, SandboxError};
