//! The FSM-based information-sharing protocol (paper §V): the proxy agent
//! compiles a plan into a finite state machine whose nodes are agents and
//! whose edges are information-transition directions; each agent cycles
//! Wait → Execution → Wait, and everything Finishes when the plan is done.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-agent protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentState {
    /// Idle, waiting for the proxy to forward a subtask.
    Wait,
    /// Executing a subtask.
    Execution,
    /// Plan complete; resources released.
    Finish,
}

/// The information-flow FSM for one execution plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fsm {
    /// Agent roles, in plan order.
    roles: Vec<String>,
    /// Directed information edges `from → to`.
    edges: Vec<(String, String)>,
    /// Current state per role.
    states: HashMap<String, AgentState>,
}

impl Fsm {
    /// Builds the FSM for a sequential plan: information flows along the
    /// chain, and every agent also reports to (and is fed by) the proxy.
    pub fn from_plan(roles: &[String]) -> Fsm {
        let mut fsm = Fsm::default();
        for (i, role) in roles.iter().enumerate() {
            fsm.roles.push(role.clone());
            fsm.states.insert(role.clone(), AgentState::Wait);
            if i > 0 {
                fsm.edges.push((roles[i - 1].clone(), role.clone()));
            }
        }
        fsm
    }

    /// Adds an extra information edge (plans are not always pure chains:
    /// e.g. a vis agent may need both the sql agent's data and the
    /// anomaly agent's findings).
    pub fn add_edge(&mut self, from: impl Into<String>, to: impl Into<String>) {
        self.edges.push((from.into(), to.into()));
    }

    /// The roles, plan order.
    pub fn roles(&self) -> &[String] {
        &self.roles
    }

    /// The roles whose information flows *into* `role` — the selective
    /// retrieval set the proxy forwards from the shared buffer.
    pub fn sources_for(&self, role: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .edges
            .iter()
            .filter(|(_, to)| to.eq_ignore_ascii_case(role))
            .map(|(from, _)| from.clone())
            .collect();
        out.dedup();
        out
    }

    /// Current state of a role.
    pub fn state(&self, role: &str) -> AgentState {
        self.states.get(role).copied().unwrap_or(AgentState::Wait)
    }

    /// Transitions a role into execution. Returns false when the role is
    /// unknown or already finished.
    pub fn begin(&mut self, role: &str) -> bool {
        match self.states.get_mut(role) {
            Some(s) if *s == AgentState::Wait => {
                *s = AgentState::Execution;
                true
            }
            _ => false,
        }
    }

    /// Transitions a role back to Wait after it responds.
    pub fn complete(&mut self, role: &str) -> bool {
        match self.states.get_mut(role) {
            Some(s) if *s == AgentState::Execution => {
                *s = AgentState::Wait;
                true
            }
            _ => false,
        }
    }

    /// Moves every agent to Finish (all subtasks done; resources released).
    pub fn finish_all(&mut self) {
        for s in self.states.values_mut() {
            *s = AgentState::Finish;
        }
    }

    /// True when every agent has finished.
    pub fn all_finished(&self) -> bool {
        !self.states.is_empty() && self.states.values().all(|s| *s == AgentState::Finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roles(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn chain_plan_edges() {
        let fsm = Fsm::from_plan(&roles(&["sql_agent", "code_agent", "vis_agent"]));
        assert_eq!(fsm.sources_for("code_agent"), vec!["sql_agent"]);
        assert_eq!(fsm.sources_for("vis_agent"), vec!["code_agent"]);
        assert!(fsm.sources_for("sql_agent").is_empty());
    }

    #[test]
    fn extra_edges_extend_sources() {
        let mut fsm = Fsm::from_plan(&roles(&["sql_agent", "anomaly_agent", "vis_agent"]));
        fsm.add_edge("sql_agent", "vis_agent");
        let src = fsm.sources_for("vis_agent");
        assert!(src.contains(&"anomaly_agent".to_string()));
        assert!(src.contains(&"sql_agent".to_string()));
    }

    #[test]
    fn state_machine_lifecycle() {
        let mut fsm = Fsm::from_plan(&roles(&["a", "b"]));
        assert_eq!(fsm.state("a"), AgentState::Wait);
        assert!(fsm.begin("a"));
        assert_eq!(fsm.state("a"), AgentState::Execution);
        assert!(!fsm.begin("a")); // can't begin twice
        assert!(fsm.complete("a"));
        assert_eq!(fsm.state("a"), AgentState::Wait);
        assert!(!fsm.complete("a")); // not executing
        fsm.finish_all();
        assert!(fsm.all_finished());
        assert!(!fsm.begin("a")); // finished agents never restart
    }

    #[test]
    fn empty_plan_is_not_finished() {
        let fsm = Fsm::from_plan(&[]);
        assert!(!fsm.all_finished());
    }
}
