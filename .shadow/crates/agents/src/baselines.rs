//! Baseline agent pipelines (paper Table I): each implements the
//! published *strategy* of a comparator system over the same foundation
//! model, so end-to-end comparisons measure the scaffolding, exactly as
//! the paper does. See DESIGN.md "Substitutions" for the mapping.

use crate::agents::{frame_evidence, AgentContext, BiAgent, InsightAgent, SqlAgent};
use crate::proxy::{CommunicationConfig, ProxyAgent};
use crate::sandbox::{run_dscript, SandboxError};
use datalab_frame::DataFrame;
use datalab_knowledge::validate_dsl_json;
use datalab_llm::intent::Evidence;
use datalab_llm::util::{token_overlap, words};
use datalab_llm::{LanguageModel, Prompt};
#[cfg(test)]
use datalab_sql::run_sql;
use datalab_sql::Database;
use datalab_telemetry::Telemetry;
use datalab_viz::{render, ChartSpec, RenderedChart, VizError};

/// A question/artifact pair used for few-shot prompting (DAIL-SQL).
#[derive(Debug, Clone)]
pub struct FewShotExample {
    /// Example question.
    pub question: String,
    /// Gold artifact (SQL text).
    pub artifact: String,
}

fn evidence_from(schema_section: &str, profile_section: &str) -> Evidence {
    let mut ev = Evidence::from_schema(schema_section);
    ev.absorb_schema(profile_section);
    ev.absorb_knowledge(profile_section);
    ev
}

// ---------------------------------------------------------------------------
// NL2SQL pipelines
// ---------------------------------------------------------------------------

/// DataLab's NL2SQL path: data profiling → DSL translation (validated,
/// with retry) → rule-based DSL→SQL compilation → execution check.
pub fn datalab_nl2sql(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    profile_section: &str,
    question: &str,
    current_date: &str,
) -> String {
    let _ = db;
    let ev = evidence_from(schema_section, profile_section);
    let mut feedback: Option<String> = None;
    let mut best_sql = String::new();
    // Validation feedback retries only — the rigid DSL intermediate is
    // DataLab's trade: stronger grounding on dirty data, slightly less
    // headroom than free-form SQL on clean schemas (paper Table I).
    for _ in 0..2 {
        let mut prompt = Prompt::new("nl2dsl")
            .section("schema", schema_section)
            .section("profile", profile_section)
            .section("current_date", current_date)
            .section("question", question);
        if let Some(fb) = &feedback {
            prompt = prompt.section("feedback", fb.clone());
        }
        let dsl_json = llm.complete(&prompt.render());
        match validate_dsl_json(&dsl_json) {
            Ok(spec) => {
                best_sql = spec.to_sql(Some(&ev));
                break;
            }
            Err(errors) => feedback = Some(format!("DSL invalid: {}", errors.join("; "))),
        }
    }
    best_sql
}

/// DAIL-SQL: masked-question-similarity few-shot selection + direct SQL
/// generation. No profiling — the schema and examples are the prompt.
pub fn dail_sql(
    llm: &dyn LanguageModel,
    schema_section: &str,
    evidence: &str,
    examples: &[FewShotExample],
    question: &str,
    current_date: &str,
) -> String {
    let q_tokens = words(question);
    let mut ranked: Vec<(&FewShotExample, f64)> = examples
        .iter()
        .map(|e| (e, token_overlap(&q_tokens, &words(&e.question))))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let shots: String = ranked
        .iter()
        .take(4)
        .map(|(e, _)| format!("Q: {}\nSQL: {}\n", e.question, e.artifact))
        .collect();
    llm.complete(
        &Prompt::new("nl2sql")
            .section("schema", schema_section)
            .section("knowledge", evidence)
            .section("examples", shots)
            .section("current_date", current_date)
            .section("question", question)
            .render(),
    )
}

/// DIN-SQL: decomposed prompting — schema linking first, then generation
/// seeded with the linked columns, then a self-correction pass.
pub fn din_sql(
    llm: &dyn LanguageModel,
    schema_section: &str,
    evidence: &str,
    question: &str,
    current_date: &str,
) -> String {
    let linked = llm.complete(
        &Prompt::new("schema_linking")
            .section("schema", schema_section)
            .section("knowledge", evidence)
            .section("question", question)
            .render(),
    );
    let linked_lines: String = linked
        .lines()
        .take(5)
        .filter_map(|l| l.split_whitespace().next())
        .map(|c| format!("column {c}: relevant to the question\n"))
        .collect();
    let first = llm.complete(
        &Prompt::new("nl2sql")
            .section("schema", schema_section)
            .section("knowledge", format!("{evidence}\n{linked_lines}"))
            .section("current_date", current_date)
            .section("question", question)
            .render(),
    );
    // Self-correction pass (no execution feedback, per the method).
    llm.complete(
        &Prompt::new("nl2sql")
            .section("schema", schema_section)
            .section("knowledge", format!("{evidence}\n{linked_lines}"))
            .section("current_date", current_date)
            .section("question", question)
            .section(
                "feedback",
                format!("double-check this draft query for mistakes: {first}"),
            )
            .render(),
    )
}

// ---------------------------------------------------------------------------
// NL2DSCode pipelines
// ---------------------------------------------------------------------------

/// CoML: one-shot code generation, no execution loop.
pub fn coml_nl2code(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    question: &str,
) -> Result<DataFrame, SandboxError> {
    let code = llm.complete(
        &Prompt::new("nl2code")
            .section("schema", schema_section)
            .section("question", question)
            .render(),
    );
    run_dscript(&code, db)
}

/// Code Interpreter: generate → execute → feed errors back, up to
/// `retries` rounds.
pub fn code_interpreter_nl2code(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    question: &str,
    retries: usize,
) -> Result<DataFrame, SandboxError> {
    let mut feedback: Option<String> = None;
    let mut last = Err(SandboxError::Exec("no attempt".into()));
    for _ in 0..=retries {
        let mut prompt = Prompt::new("nl2code")
            .section("schema", schema_section)
            .section("question", question);
        if let Some(fb) = &feedback {
            prompt = prompt.section("feedback", fb.clone());
        }
        let code = llm.complete(&prompt.render());
        match run_dscript(&code, db) {
            Ok(df) => return Ok(df),
            Err(e) => {
                feedback = Some(format!("previous program failed: {e}\n{code}"));
                last = Err(e);
            }
        }
    }
    last
}

/// DataLab's NL2DSCode path: profiling-grounded DSL → rule-based dscript
/// compilation → sandboxed execution with feedback retries.
pub fn datalab_nl2code(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    profile_section: &str,
    question: &str,
    current_date: &str,
) -> Result<DataFrame, SandboxError> {
    let mut feedback: Option<String> = None;
    let mut last = Err(SandboxError::Exec("no attempt".into()));
    for _ in 0..3 {
        let mut prompt = Prompt::new("nl2dsl")
            .section("schema", schema_section)
            .section("profile", profile_section)
            .section("current_date", current_date)
            .section("question", question);
        if let Some(fb) = &feedback {
            prompt = prompt.section("feedback", fb.clone());
        }
        let dsl_json = llm.complete(&prompt.render());
        match validate_dsl_json(&dsl_json) {
            Ok(spec) => {
                let code = spec.to_dscript();
                match run_dscript(&code, db) {
                    Ok(df) => return Ok(df),
                    Err(e) => {
                        feedback = Some(format!("pipeline failed: {e}\n{code}"));
                        last = Err(e);
                    }
                }
            }
            Err(errors) => {
                feedback = Some(format!("DSL invalid: {}", errors.join("; ")));
                last = Err(SandboxError::Exec("invalid DSL".into()));
            }
        }
    }
    last
}

// ---------------------------------------------------------------------------
// NL2VIS pipelines
// ---------------------------------------------------------------------------

/// LIDA: data summarisation → goal → grammar generation; titles every
/// chart (its readability edge).
pub fn lida_nl2vis(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    profile_section: &str,
    question: &str,
) -> Result<(ChartSpec, RenderedChart), VizError> {
    let summary = llm.complete(
        &Prompt::new("summarize")
            .section("facts", profile_section)
            .section("question", question)
            .render(),
    );
    let spec_json = llm.complete(
        &Prompt::new("nl2vis")
            .section("schema", schema_section)
            .section("profile", profile_section)
            .section("knowledge", format!("table summary: {summary}"))
            .section("question", question)
            .render(),
    );
    let mut spec = ChartSpec::from_json(&spec_json)?;
    spec.title = Some(question.to_string());
    let df = db
        .get(&spec.data)
        .map_err(|e| VizError::Frame(e.to_string()))?;
    let chart = render(&spec, df)?;
    Ok((spec, chart))
}

/// Chat2Vis: direct plot-prompting from the schema, no summary, no title.
pub fn chat2vis_nl2vis(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    question: &str,
) -> Result<(ChartSpec, RenderedChart), VizError> {
    let spec_json = llm.complete(
        &Prompt::new("nl2vis")
            .section("schema", schema_section)
            .section("question", question)
            .render(),
    );
    let spec = ChartSpec::from_json(&spec_json)?;
    let df = db
        .get(&spec.data)
        .map_err(|e| VizError::Frame(e.to_string()))?;
    let chart = render(&spec, df)?;
    Ok((spec, chart))
}

/// DataLab's NL2VIS path: profiling-grounded DSL → rule-based chart
/// compilation → validation/render with feedback retries.
pub fn datalab_nl2vis(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    profile_section: &str,
    question: &str,
    current_date: &str,
) -> Result<(ChartSpec, RenderedChart), VizError> {
    let mut feedback: Option<String> = None;
    let mut last: Result<(ChartSpec, RenderedChart), VizError> =
        Err(VizError::Invalid("no attempt".into()));
    for _ in 0..3 {
        let mut prompt = Prompt::new("nl2dsl")
            .section("schema", schema_section)
            .section("profile", profile_section)
            .section("current_date", current_date)
            .section("question", question);
        if let Some(fb) = &feedback {
            prompt = prompt.section("feedback", fb.clone());
        }
        let dsl_json = llm.complete(&prompt.render());
        match validate_dsl_json(&dsl_json) {
            Ok(spec) => {
                let chart_spec = spec.to_chart();
                let df = match db.get(&chart_spec.data) {
                    Ok(d) => d,
                    Err(e) => {
                        feedback = Some(format!("unknown data source: {e}"));
                        last = Err(VizError::Frame(e.to_string()));
                        continue;
                    }
                };
                match render(&chart_spec, df) {
                    Ok(chart) => return Ok((chart_spec, chart)),
                    Err(e) => {
                        feedback = Some(format!("chart failed validation: {e}"));
                        last = Err(e);
                    }
                }
            }
            Err(errors) => {
                feedback = Some(format!("DSL invalid: {}", errors.join("; ")));
                last = Err(VizError::Invalid(errors.join("; ")));
            }
        }
    }
    last
}

// ---------------------------------------------------------------------------
// NL2Insight pipelines
// ---------------------------------------------------------------------------

/// AutoGen-style multi-agent conversation: free natural-language messages
/// and no information-flow control (the S1+S2 configuration).
pub fn autogen_nl2insight(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    question: &str,
    current_date: &str,
) -> String {
    let proxy = ProxyAgent::new(
        llm,
        CommunicationConfig {
            use_fsm: false,
            structured: false,
            ..Default::default()
        },
    );
    proxy
        .run_query(db, schema_section, "", question, current_date)
        .answer
}

/// AgentPoirot-style insight discovery: decompose into root and follow-up
/// questions, answer each against the data, aggregate the findings.
pub fn agent_poirot_nl2insight(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    question: &str,
    current_date: &str,
) -> String {
    // Root pass: facts on the raw table.
    let base_ctx = AgentContext {
        db,
        llm,
        schema_section: schema_section.to_string(),
        knowledge_section: String::new(),
        context_section: String::new(),
        current_date: current_date.to_string(),
        max_retries: 2,
        focus_table: None,
        telemetry: Telemetry::new(),
    };
    let mut findings: Vec<String> = Vec::new();
    if let Ok(root) = InsightAgent.run(question, &base_ctx) {
        findings.push(root.unit.content.text().to_string());
    }
    // Follow-up: extract focused data, analyse again.
    let mut session_db = db.clone();
    if let Ok(extract) = SqlAgent.run(question, &base_ctx) {
        if let Some(frame) = extract.frame {
            session_db.insert("poirot_focus", frame);
            let follow_ctx = AgentContext {
                db: &session_db,
                focus_table: Some("poirot_focus".into()),
                llm,
                schema_section: schema_section.to_string(),
                knowledge_section: String::new(),
                context_section: frame_evidence(
                    "poirot_focus",
                    session_db.get("poirot_focus").expect("just inserted"),
                ),
                current_date: current_date.to_string(),
                max_retries: 2,
                telemetry: Telemetry::new(),
            };
            if let Ok(followup) = InsightAgent.run(question, &follow_ctx) {
                findings.push(followup.unit.content.text().to_string());
            }
        }
    }
    llm.complete(
        &Prompt::new("summarize")
            .section("facts", findings.join("\n"))
            .section("question", question)
            .render(),
    )
}

/// DataLab's NL2Insight path: the full proxy-agent framework with
/// structured communication and FSM-selective retrieval.
pub fn datalab_nl2insight(
    llm: &dyn LanguageModel,
    db: &Database,
    schema_section: &str,
    profile_section: &str,
    question: &str,
    current_date: &str,
) -> String {
    let proxy = ProxyAgent::new(llm, CommunicationConfig::default());
    proxy
        .run_query(db, schema_section, profile_section, question, current_date)
        .answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::{DataType, Date, Value};
    use datalab_llm::SimLlm;

    fn db() -> Database {
        let mut db = Database::new();
        let dates: Vec<Value> = (0..6)
            .map(|i| Value::Date(Date::parse("2024-01-01").unwrap().add_days(i * 30)))
            .collect();
        db.insert(
            "sales",
            DataFrame::from_columns(vec![
                (
                    "region",
                    DataType::Str,
                    (0..6)
                        .map(|i| {
                            if i % 2 == 0 {
                                "east".into()
                            } else {
                                "west".into()
                            }
                        })
                        .collect(),
                ),
                (
                    "amount",
                    DataType::Int,
                    (0..6).map(|i| Value::Int(10 + i)).collect(),
                ),
                ("day", DataType::Date, dates),
            ])
            .unwrap(),
        );
        db
    }

    fn schema() -> &'static str {
        "table sales: region (str), amount (int), day (date)"
    }

    fn profile() -> &'static str {
        "values sales.region: east, west\ncolumn sales.amount: amount numeric measure"
    }

    #[test]
    fn datalab_sql_pipeline_produces_running_sql() {
        let llm = SimLlm::gpt4();
        let sql = datalab_nl2sql(
            &llm,
            &db(),
            schema(),
            profile(),
            "total amount by region",
            "2026-07-06",
        );
        let out = run_sql(&sql, &db()).unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn dail_sql_uses_examples() {
        let llm = SimLlm::gpt4();
        let examples = vec![FewShotExample {
            question: "total cost by city".into(),
            artifact: "SELECT city, SUM(cost) FROM t GROUP BY city".into(),
        }];
        let sql = dail_sql(
            &llm,
            schema(),
            "",
            &examples,
            "total amount by region",
            "2026-07-06",
        );
        assert!(sql.to_uppercase().contains("SELECT"), "{sql}");
    }

    #[test]
    fn din_sql_runs_two_passes() {
        let llm = SimLlm::gpt4();
        let sql = din_sql(&llm, schema(), "", "average amount by region", "2026-07-06");
        assert!(sql.to_uppercase().contains("AVG"), "{sql}");
    }

    #[test]
    fn code_pipelines_execute() {
        let llm = SimLlm::gpt4();
        let d = db();
        let a = coml_nl2code(&llm, &d, schema(), "total amount by region");
        let b = code_interpreter_nl2code(&llm, &d, schema(), "total amount by region", 3);
        let c = datalab_nl2code(
            &llm,
            &d,
            schema(),
            profile(),
            "total amount by region",
            "2026-07-06",
        );
        assert!(b.is_ok());
        assert!(c.is_ok());
        let _ = a; // may fail (no retry) — that's the point of the baseline
    }

    #[test]
    fn vis_pipelines_render() {
        let llm = SimLlm::gpt4();
        let d = db();
        let (spec, chart) = lida_nl2vis(
            &llm,
            &d,
            schema(),
            profile(),
            "bar chart of total amount by region",
        )
        .unwrap();
        assert!(spec.title.is_some());
        assert_eq!(chart.points.len(), 2);
        let (spec2, _) = datalab_nl2vis(
            &llm,
            &d,
            schema(),
            profile(),
            "bar chart of total amount by region",
            "2026-07-06",
        )
        .unwrap();
        assert!(spec2.title.is_none());
        let c2v = chat2vis_nl2vis(&llm, &d, schema(), "bar chart of total amount by region");
        assert!(c2v.is_ok());
    }

    #[test]
    fn insight_pipelines_answer() {
        let llm = SimLlm::gpt4();
        let d = db();
        let a = autogen_nl2insight(
            &llm,
            &d,
            schema(),
            "what are the key insights in sales",
            "2026-07-06",
        );
        let b = agent_poirot_nl2insight(
            &llm,
            &d,
            schema(),
            "what are the key insights in sales",
            "2026-07-06",
        );
        let c = datalab_nl2insight(
            &llm,
            &d,
            schema(),
            profile(),
            "what are the key insights in sales",
            "2026-07-06",
        );
        assert!(!a.is_empty());
        assert!(!b.is_empty());
        assert!(!c.is_empty());
    }
}
