//! The knowledge graph (paper §IV-B, Fig. 5): a tree of
//! database/table/column/value nodes plus jargon nodes, with alias nodes
//! associatively linked to primaries.

use crate::components::{DatabaseKnowledge, JargonEntry, TableKnowledge};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Node identifier (index into the graph's arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// The five primary node types plus `Alias`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A database.
    Database,
    /// A table.
    Table,
    /// A column.
    Column,
    /// A notable stored value.
    Value,
    /// A glossary term.
    Jargon,
    /// An alternative name for another node.
    Alias,
}

/// A graph node: kind, unique name, and its knowledge components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Unique name. Columns are named `table.column`; values
    /// `table.column=value`.
    pub name: String,
    /// Knowledge components (`description`, `usage`, `calculation`, ...).
    pub components: BTreeMap<String, String>,
    /// Tags.
    pub tags: Vec<String>,
}

/// Edge kinds: tree containment and alias association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Parent contains child (database→table→column→value).
    Contains,
    /// Alias node → the primary node it names.
    AliasOf,
}

/// The knowledge graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
}

impl KnowledgeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        KnowledgeGraph::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(
        &mut self,
        kind: NodeKind,
        name: impl Into<String>,
        components: BTreeMap<String, String>,
        tags: Vec<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
            components,
            tags,
        });
        id
    }

    /// Adds a containment edge (parent → child).
    pub fn add_contains(&mut self, parent: NodeId, child: NodeId) {
        self.edges.push((parent, child, EdgeKind::Contains));
    }

    /// Adds an alias node pointing at a primary node.
    pub fn add_alias(&mut self, term: impl Into<String>, target: NodeId) -> NodeId {
        let id = self.add_node(NodeKind::Alias, term, BTreeMap::new(), Vec::new());
        self.edges.push((id, target, EdgeKind::AliasOf));
        id
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable node access (for dynamic alias/knowledge updates).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of a node (Contains edges).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(p, _, k)| *p == id && *k == EdgeKind::Contains)
            .map(|(_, c, _)| *c)
            .collect()
    }

    /// Parent of a node, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.edges
            .iter()
            .find(|(_, c, k)| *c == id && *k == EdgeKind::Contains)
            .map(|(p, _, _)| *p)
    }

    /// Backtracks an alias node to its nearest primary node (paper
    /// Algorithm 2, line 7). Non-alias nodes return themselves.
    pub fn backtrack(&self, id: NodeId) -> NodeId {
        let mut cur = id;
        let mut hops = 0;
        while self.node(cur).kind == NodeKind::Alias && hops < 8 {
            match self
                .edges
                .iter()
                .find(|(a, _, k)| *a == cur && *k == EdgeKind::AliasOf)
            {
                Some((_, target, _)) => cur = *target,
                None => break,
            }
            hops += 1;
        }
        cur
    }

    /// Finds a node by kind and exact name (case-insensitive).
    pub fn find(&self, kind: NodeKind, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.kind == kind && n.name.eq_ignore_ascii_case(name))
            .map(|n| n.id)
    }

    /// Ingests a whole [`TableKnowledge`] (plus its columns, derived
    /// columns, values, and aliases) under a database node.
    pub fn ingest_table(&mut self, database: &str, tk: &TableKnowledge) -> NodeId {
        let db_id = self.find(NodeKind::Database, database).unwrap_or_else(|| {
            self.add_node(NodeKind::Database, database, BTreeMap::new(), Vec::new())
        });
        let mut tc = BTreeMap::new();
        tc.insert("description".into(), tk.description.clone());
        tc.insert("usage".into(), tk.usage.clone());
        if !tk.organization.is_empty() {
            tc.insert("organization".into(), tk.organization.clone());
        }
        if !tk.key_columns.is_empty() {
            tc.insert("key_columns".into(), tk.key_columns.join(", "));
        }
        let t_id = self.add_node(NodeKind::Table, tk.name.clone(), tc, tk.tags.clone());
        self.add_contains(db_id, t_id);
        for col in &tk.columns {
            let mut cc = BTreeMap::new();
            cc.insert("description".into(), col.description.clone());
            cc.insert("usage".into(), col.usage.clone());
            cc.insert("type".into(), col.dtype.clone());
            let c_id = self.add_node(
                NodeKind::Column,
                format!("{}.{}", tk.name, col.name),
                cc,
                col.tags.clone(),
            );
            self.add_contains(t_id, c_id);
            for alias in &col.aliases {
                self.add_alias(alias.clone(), c_id);
            }
        }
        for d in &tk.derived {
            let mut dc = BTreeMap::new();
            dc.insert("description".into(), d.description.clone());
            dc.insert("usage".into(), d.usage.clone());
            dc.insert("calculation".into(), d.calculation.clone());
            if !d.related_columns.is_empty() {
                dc.insert("related_columns".into(), d.related_columns.join(", "));
            }
            let d_id = self.add_node(NodeKind::Column, format!("{}.{}", tk.name, d.name), dc, {
                let mut tags = d.tags.clone();
                tags.push("derived".into());
                tags
            });
            self.add_contains(t_id, d_id);
        }
        t_id
    }

    /// Ingests database-level knowledge.
    pub fn ingest_database(&mut self, dk: &DatabaseKnowledge) -> NodeId {
        let id = self.find(NodeKind::Database, &dk.name).unwrap_or_else(|| {
            self.add_node(
                NodeKind::Database,
                dk.name.clone(),
                BTreeMap::new(),
                Vec::new(),
            )
        });
        let node = self.node_mut(id);
        node.components
            .insert("description".into(), dk.description.clone());
        node.components.insert("usage".into(), dk.usage.clone());
        node.tags = dk.tags.clone();
        id
    }

    /// Ingests a value node under a column.
    pub fn ingest_value(
        &mut self,
        table: &str,
        column: &str,
        value: &str,
        meaning: &str,
    ) -> NodeId {
        let col_id = self.find(NodeKind::Column, &format!("{table}.{column}"));
        let mut vc = BTreeMap::new();
        vc.insert("description".into(), meaning.to_string());
        vc.insert("value".into(), value.to_string());
        let v_id = self.add_node(
            NodeKind::Value,
            format!("{table}.{column}={value}"),
            vc,
            Vec::new(),
        );
        if let Some(c) = col_id {
            self.add_contains(c, v_id);
        }
        v_id
    }

    /// Ingests a jargon entry.
    pub fn ingest_jargon(&mut self, entry: &JargonEntry) -> NodeId {
        let mut jc = BTreeMap::new();
        jc.insert("expansion".into(), entry.expansion.clone());
        self.add_node(NodeKind::Jargon, entry.term.clone(), jc, Vec::new())
    }

    /// Renders a node as the evidence line the simulated model grounds
    /// against (the cross-crate prompt contract; see `datalab_llm::intent`).
    pub fn knowledge_line(&self, id: NodeId) -> String {
        let node = self.node(id);
        let desc = node
            .components
            .get("description")
            .cloned()
            .unwrap_or_default();
        let usage = node.components.get("usage").cloned().unwrap_or_default();
        match node.kind {
            NodeKind::Database => format!("database {}: {} {}", node.name, desc, usage),
            NodeKind::Table => format!("table {}: {} {}", node.name, desc, usage),
            NodeKind::Column => {
                if let Some(calc) = node.components.get("calculation") {
                    // Derived columns surface their calculation logic.
                    format!("derived {} = {}", node.name, calc)
                } else {
                    format!("column {}: {} {}", node.name, desc, usage)
                }
            }
            NodeKind::Value => {
                let value = node.components.get("value").cloned().unwrap_or_default();
                let col = node.name.split('=').next().unwrap_or("");
                format!("value {col}: '{value}' {desc}")
            }
            NodeKind::Jargon => {
                let exp = node
                    .components
                    .get("expansion")
                    .cloned()
                    .unwrap_or_default();
                format!("jargon {}: {exp}", node.name)
            }
            NodeKind::Alias => {
                let target = self.backtrack(id);
                let tnode = self.node(target);
                match tnode.kind {
                    NodeKind::Value => {
                        let col = tnode.name.split('=').next().unwrap_or("");
                        let value = tnode.components.get("value").cloned().unwrap_or_default();
                        format!("alias {} -> value {col} = '{value}'", node.name)
                    }
                    _ => format!("alias {} -> {}", node.name, tnode.name),
                }
            }
        }
    }

    /// All alias nodes pointing (directly) at `target`.
    pub fn aliases_of(&self, target: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(_, t, k)| *t == target && *k == EdgeKind::AliasOf)
            .map(|(a, _, _)| *a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ColumnKnowledge;

    fn sample_graph() -> (KnowledgeGraph, NodeId) {
        let mut g = KnowledgeGraph::new();
        let tk = TableKnowledge {
            name: "sales".into(),
            description: "daily revenue records".into(),
            columns: vec![ColumnKnowledge {
                name: "shouldincome_after".into(),
                dtype: "float".into(),
                description: "income after tax".into(),
                aliases: vec!["income".into(), "revenue".into()],
                ..Default::default()
            }],
            derived: vec![crate::components::DerivedColumn {
                name: "profit".into(),
                calculation: "shouldincome_after - cost".into(),
                ..Default::default()
            }],
            ..Default::default()
        };
        let t = g.ingest_table("biz", &tk);
        (g, t)
    }

    #[test]
    fn tree_structure() {
        let (g, t) = sample_graph();
        let db = g.parent(t).unwrap();
        assert_eq!(g.node(db).kind, NodeKind::Database);
        let children = g.children(t);
        assert_eq!(children.len(), 2); // column + derived
    }

    #[test]
    fn alias_backtracks_to_primary() {
        let (g, _) = sample_graph();
        let alias = g.find(NodeKind::Alias, "income").unwrap();
        let primary = g.backtrack(alias);
        assert_eq!(g.node(primary).name, "sales.shouldincome_after");
        // Backtrack of a primary is itself.
        assert_eq!(g.backtrack(primary), primary);
    }

    #[test]
    fn knowledge_lines_follow_contract() {
        let (g, _) = sample_graph();
        let col = g
            .find(NodeKind::Column, "sales.shouldincome_after")
            .unwrap();
        assert!(g
            .knowledge_line(col)
            .starts_with("column sales.shouldincome_after: income after tax"));
        let alias = g.find(NodeKind::Alias, "income").unwrap();
        assert_eq!(
            g.knowledge_line(alias),
            "alias income -> sales.shouldincome_after"
        );
        let derived = g.find(NodeKind::Column, "sales.profit").unwrap();
        assert_eq!(
            g.knowledge_line(derived),
            "derived sales.profit = shouldincome_after - cost"
        );
    }

    #[test]
    fn value_and_jargon_lines() {
        let (mut g, _) = sample_graph();
        let v = g.ingest_value("sales", "shouldincome_after", "0", "no income");
        assert!(g
            .knowledge_line(v)
            .starts_with("value sales.shouldincome_after: '0'"));
        let j = g.ingest_jargon(&JargonEntry {
            term: "gmv".into(),
            expansion: "total amount".into(),
        });
        assert_eq!(g.knowledge_line(j), "jargon gmv: total amount");
        // Alias to a value node.
        let a = g.add_alias("zerocase", v);
        assert!(g
            .knowledge_line(a)
            .starts_with("alias zerocase -> value sales.shouldincome_after = '0'"));
    }

    #[test]
    fn aliases_of_lists_all() {
        let (g, _) = sample_graph();
        let col = g
            .find(NodeKind::Column, "sales.shouldincome_after")
            .unwrap();
        assert_eq!(g.aliases_of(col).len(), 2);
    }
}
