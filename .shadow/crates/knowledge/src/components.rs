//! Knowledge components (paper §IV-A) and the raw inputs knowledge is
//! generated from: table schemas, script histories, and lineage.

use serde::{Deserialize, Serialize};

/// The language of a historical data-processing script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptLang {
    /// SQL query.
    Sql,
    /// Python / PySpark code.
    Python,
}

/// One historical data-processing script associated with a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Script {
    /// Language.
    pub lang: ScriptLang,
    /// Source text.
    pub text: String,
}

impl Script {
    /// A SQL script.
    pub fn sql(text: impl Into<String>) -> Self {
        Script {
            lang: ScriptLang::Sql,
            text: text.into(),
        }
    }

    /// A Python script.
    pub fn python(text: impl Into<String>) -> Self {
        Script {
            lang: ScriptLang::Python,
            text: text.into(),
        }
    }
}

/// Data-lineage information: which other tables feed or consume this one
/// (paper §IV-A uses lineage as an auxiliary resource when scripts are
/// scarce).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// Upstream source tables.
    pub upstream: Vec<String>,
    /// Downstream consumer tables.
    pub downstream: Vec<String>,
}

/// Database-level knowledge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatabaseKnowledge {
    /// Database name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Usage summary.
    pub usage: String,
    /// Tags.
    pub tags: Vec<String>,
}

/// A derived column: absent from the physical table but computable, with
/// the calculation logic that business users actually care about.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DerivedColumn {
    /// Derived column name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Usage.
    pub usage: String,
    /// Calculation logic (SQL expression over base columns).
    pub calculation: String,
    /// Base columns involved.
    pub related_columns: Vec<String>,
    /// Tags.
    pub tags: Vec<String>,
}

/// Column-level knowledge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnKnowledge {
    /// Column name.
    pub name: String,
    /// Data type string.
    pub dtype: String,
    /// Description.
    pub description: String,
    /// Usage summary (how scripts use it).
    pub usage: String,
    /// Tags (`measure`, `dimension`, `filter`, ...).
    pub tags: Vec<String>,
    /// Alternative names users say for this column.
    pub aliases: Vec<String>,
}

/// Table-level knowledge.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableKnowledge {
    /// Table name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Usage summary.
    pub usage: String,
    /// Owning organisation / team.
    pub organization: String,
    /// Key column names.
    pub key_columns: Vec<String>,
    /// Key derived attribute names.
    pub key_derived: Vec<String>,
    /// Tags.
    pub tags: Vec<String>,
    /// Column knowledge.
    pub columns: Vec<ColumnKnowledge>,
    /// Derived columns.
    pub derived: Vec<DerivedColumn>,
}

impl TableKnowledge {
    /// Looks up a column's knowledge by name.
    pub fn column(&self, name: &str) -> Option<&ColumnKnowledge> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// A jargon glossary entry (manually curated in the paper).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JargonEntry {
    /// The term as users type it.
    pub term: String,
    /// Its expansion in plain analytical language.
    pub expansion: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let tk = TableKnowledge {
            name: "sales".into(),
            description: "daily revenue".into(),
            columns: vec![ColumnKnowledge {
                name: "amount".into(),
                description: "revenue per order".into(),
                aliases: vec!["revenue".into()],
                ..Default::default()
            }],
            derived: vec![DerivedColumn {
                name: "profit".into(),
                calculation: "amount - cost".into(),
                ..Default::default()
            }],
            ..Default::default()
        };
        let json = serde_json::to_string(&tk).unwrap();
        let back: TableKnowledge = serde_json::from_str(&json).unwrap();
        assert_eq!(tk, back);
        assert!(tk.column("AMOUNT").is_some());
        assert!(tk.column("missing").is_none());
    }
}
