//! # datalab-knowledge
//!
//! DataLab's **Domain Knowledge Incorporation** module (paper §IV):
//!
//! - [`components`] — knowledge components for databases, tables, columns,
//!   derived columns, values, and jargon, plus the raw inputs (script
//!   histories, lineage),
//! - [`generation`] — Algorithm 1: LLM-based Map-Reduce knowledge
//!   generation with a self-calibration loop,
//! - [`graph`] — the knowledge graph with alias nodes (Fig. 5),
//! - [`index`] — task-aware lexical + semantic indexing of `{name,
//!   content, tag}` triplets,
//! - [`retrieval`] — Algorithm 2: coarse-to-fine retrieval with a
//!   three-stage weighted matching score,
//! - [`dsl`] — the DSL specification with JSON-schema validation and the
//!   rule-based converters to SQL / chart specs / dscript,
//! - [`profiling`] — the data-profiling fallback for in-the-wild tables,
//! - [`utilization`] — the rewrite → retrieve → translate pipeline.

#![warn(missing_docs)]

pub mod components;
pub mod dsl;
pub mod generation;
pub mod graph;
pub mod index;
pub mod profiling;
pub mod retrieval;
pub mod utilization;

pub use components::{
    ColumnKnowledge, DatabaseKnowledge, DerivedColumn, JargonEntry, Lineage, Script, ScriptLang,
    TableKnowledge,
};
pub use dsl::{validate_dsl_json, DslColumn, DslCondition, DslMeasure, DslOrder, DslSpec};
pub use generation::{
    generate_table_knowledge, generate_table_knowledge_traced, preprocess_scripts,
    GenerationConfig, GenerationReport,
};
pub use graph::{EdgeKind, KnowledgeGraph, Node, NodeId, NodeKind};
pub use index::{IndexEntry, IndexTask, KnowledgeIndex};
pub use profiling::{profile_table, ProfiledTable};
pub use retrieval::{render_knowledge, retrieve, RetrievalConfig, Retrieved};
pub use utilization::{
    incorporate, incorporate_traced, GroundingContext, IncorporateConfig, KnowledgeSetting,
};
