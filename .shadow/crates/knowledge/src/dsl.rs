//! The DSL specification (paper §IV-C): the JSON intermediate between NL
//! queries and executable artifacts, with schema validation and the
//! rule-based converters to SQL, chart specs, and dscript pipelines.

use datalab_llm::intent::Evidence;
use datalab_viz::{ChartFilter, ChartSpec, FieldDef, Mark};
use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// One measure in the DSL.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DslMeasure {
    /// Owning table (optional for COUNT(*)).
    #[serde(default)]
    pub table: Option<String>,
    /// Measured column; `None` means `COUNT(*)`.
    #[serde(default)]
    pub column: Option<String>,
    /// Aggregate name: `sum|avg|count|count_distinct|min|max`.
    pub aggregate: String,
    /// Calculation expression for derived measures.
    #[serde(default)]
    pub expr: Option<String>,
    /// Output alias.
    #[serde(default)]
    pub alias: Option<String>,
}

impl DslMeasure {
    /// Output alias, defaulting to `agg_column`.
    pub fn alias_or_default(&self) -> String {
        self.alias.clone().unwrap_or_else(|| match &self.column {
            Some(c) => format!("{}_{}", self.aggregate, c.to_lowercase()),
            None => "cnt".to_string(),
        })
    }
}

/// A dimension or projection column.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DslColumn {
    /// Owning table.
    #[serde(default)]
    pub table: String,
    /// Column name.
    pub column: String,
}

/// One filter condition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DslCondition {
    /// Owning table.
    #[serde(default)]
    pub table: String,
    /// Filtered column.
    pub column: String,
    /// Operator: `=|>|>=|<|<=|!=|between`.
    pub op: String,
    /// Operand (number, string, or `[lo, hi]` for `between`).
    pub value: Json,
}

/// Ordering directive.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DslOrder {
    /// What to sort on (currently `measure` = the first measure).
    #[serde(default)]
    pub target: String,
    /// Descending?
    #[serde(default)]
    pub desc: bool,
}

/// The full DSL specification.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(rename_all = "PascalCase")]
pub struct DslSpec {
    /// Measures (numerical aggregations).
    #[serde(default)]
    pub measure_list: Vec<DslMeasure>,
    /// Grouping dimensions (categorical columns).
    #[serde(default)]
    pub dimension_list: Vec<DslColumn>,
    /// Filters.
    #[serde(default)]
    pub condition_list: Vec<DslCondition>,
    /// Plain projections for list queries.
    #[serde(default)]
    pub projection_list: Vec<DslColumn>,
    /// Ordering.
    #[serde(default)]
    pub order_by: Option<DslOrder>,
    /// LIMIT.
    #[serde(default)]
    pub limit: Option<usize>,
    /// Chart-type hint.
    #[serde(default)]
    pub chart: Option<String>,
    /// Data-preparation request: drop rows with missing values first.
    #[serde(default)]
    pub clean: Option<bool>,
}

const AGGREGATES: &[&str] = &["sum", "avg", "count", "count_distinct", "min", "max"];
const OPS: &[&str] = &["=", "==", ">", ">=", "<", "<=", "!=", "<>", "between"];

/// Validates raw DSL JSON against the DSL's schema (paper §IV-C uses JSON
/// Schema; this is an equivalent hand-rolled validator) and deserializes
/// it. Returns all violations at once so the caller can report or retry.
pub fn validate_dsl_json(text: &str) -> Result<DslSpec, Vec<String>> {
    let json: Json = match serde_json::from_str(text.trim()) {
        Ok(j) => j,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    let mut errors = Vec::new();
    if !json.is_object() {
        return Err(vec!["top-level value must be an object".into()]);
    }
    for key in ["MeasureList", "DimensionList", "ConditionList"] {
        if !json[key].is_null() && !json[key].is_array() {
            errors.push(format!("{key} must be an array"));
        }
    }
    if let Some(measures) = json["MeasureList"].as_array() {
        for (i, m) in measures.iter().enumerate() {
            match m["aggregate"].as_str() {
                Some(a) if AGGREGATES.contains(&a) => {}
                Some(a) => errors.push(format!("MeasureList[{i}]: unknown aggregate '{a}'")),
                None => errors.push(format!("MeasureList[{i}]: missing aggregate")),
            }
            let has_col = m["column"].is_string();
            let has_expr = m["expr"].is_string();
            let is_count = m["aggregate"].as_str() == Some("count");
            if !has_col && !has_expr && !is_count {
                errors.push(format!("MeasureList[{i}]: needs a column or expr"));
            }
        }
    }
    if let Some(conds) = json["ConditionList"].as_array() {
        for (i, c) in conds.iter().enumerate() {
            if !c["column"].is_string() {
                errors.push(format!("ConditionList[{i}]: missing column"));
            }
            match c["op"].as_str() {
                Some(op) if OPS.contains(&op) => {
                    if op == "between" {
                        let ok = c["value"].as_array().map(|a| a.len() == 2).unwrap_or(false);
                        if !ok {
                            errors.push(format!(
                                "ConditionList[{i}]: between requires a [lo, hi] pair"
                            ));
                        }
                    }
                }
                Some(op) => errors.push(format!("ConditionList[{i}]: unknown op '{op}'")),
                None => errors.push(format!("ConditionList[{i}]: missing op")),
            }
        }
    }
    if let Some(chart) = json["Chart"].as_str() {
        if Mark::parse(chart).is_none() {
            errors.push(format!("Chart: unknown mark '{chart}'"));
        }
    }
    if !json["Limit"].is_null() && json["Limit"].as_u64().is_none() {
        errors.push("Limit must be a non-negative integer".into());
    }
    let empty = json["MeasureList"]
        .as_array()
        .map(|a| a.is_empty())
        .unwrap_or(true)
        && json["DimensionList"]
            .as_array()
            .map(|a| a.is_empty())
            .unwrap_or(true)
        && json["ProjectionList"]
            .as_array()
            .map(|a| a.is_empty())
            .unwrap_or(true);
    if empty {
        errors.push("spec selects nothing (no measures, dimensions, or projections)".into());
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    serde_json::from_value(json).map_err(|e| vec![format!("deserialization failed: {e}")])
}

fn sql_quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Renders an identifier, quoting it when it collides with a keyword.
fn ident(s: &str) -> String {
    if datalab_sql::is_reserved_word(s) {
        format!("\"{s}\"")
    } else {
        s.to_string()
    }
}

fn json_sql(v: &Json) -> String {
    match v {
        Json::Number(n) => n.to_string(),
        Json::String(s) => sql_quote(s),
        Json::Bool(b) => b.to_string(),
        other => sql_quote(&other.to_string()),
    }
}

impl DslSpec {
    /// Every table the spec touches, first-mention order.
    pub fn tables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut add = |t: &str| {
            if !t.is_empty() && !out.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                out.push(t.to_string());
            }
        };
        for m in &self.measure_list {
            if let Some(t) = &m.table {
                add(t);
            }
        }
        for d in &self.dimension_list {
            add(&d.table);
        }
        for c in &self.condition_list {
            add(&c.table);
        }
        for p in &self.projection_list {
            add(&p.table);
        }
        out
    }

    /// Rule-based conversion to SQL (paper: "directly converted to
    /// high-level languages like SQL based on predefined rules").
    /// `evidence` supplies FK join paths when the spec spans tables.
    pub fn to_sql(&self, evidence: Option<&Evidence>) -> String {
        let tables = self.tables();
        let base = tables
            .first()
            .cloned()
            .unwrap_or_else(|| "data".to_string());
        let multi = tables.len() > 1;
        let qual = |t: &str, c: &str| {
            if multi && !t.is_empty() {
                format!("{}.{}", ident(t), ident(c))
            } else {
                ident(c)
            }
        };
        let mut items: Vec<String> = Vec::new();
        for d in &self.dimension_list {
            items.push(qual(&d.table, &d.column));
        }
        for m in &self.measure_list {
            let inner = match (&m.expr, &m.column) {
                (Some(e), _) => e.clone(),
                (None, Some(c)) => qual(m.table.as_deref().unwrap_or(""), c),
                (None, None) => "*".to_string(),
            };
            let agg = match m.aggregate.as_str() {
                "count_distinct" => return_count_distinct(&inner, &m.alias_or_default()),
                a => format!("{}({inner}) AS {}", a.to_uppercase(), m.alias_or_default()),
            };
            items.push(agg);
        }
        for p in &self.projection_list {
            items.push(qual(&p.table, &p.column));
        }
        if items.is_empty() {
            items.push("*".to_string());
        }
        let mut sql = format!("SELECT {} FROM {}", items.join(", "), ident(&base));
        if multi {
            if let Some(ev) = evidence {
                for t in tables.iter().skip(1) {
                    if let Some(path) = ev.join_path(&base, t) {
                        for (l, r) in path {
                            sql.push_str(&format!(
                                " JOIN {} ON {}.{} = {}.{}",
                                r.table, l.table, l.column, r.table, r.column
                            ));
                        }
                    }
                }
            }
        }
        if !self.condition_list.is_empty() {
            let conds: Vec<String> = self
                .condition_list
                .iter()
                .map(|c| {
                    let col = qual(&c.table, &c.column);
                    if c.op == "between" {
                        let arr = c.value.as_array().cloned().unwrap_or_default();
                        let lo = arr.first().map(json_sql).unwrap_or_else(|| "NULL".into());
                        let hi = arr.get(1).map(json_sql).unwrap_or_else(|| "NULL".into());
                        format!("{col} BETWEEN {lo} AND {hi}")
                    } else {
                        let op = if c.op == "==" { "=" } else { c.op.as_str() };
                        format!("{col} {op} {}", json_sql(&c.value))
                    }
                })
                .collect();
            sql.push_str(" WHERE ");
            sql.push_str(&conds.join(" AND "));
        }
        if !self.measure_list.is_empty() && !self.dimension_list.is_empty() {
            let dims: Vec<String> = self
                .dimension_list
                .iter()
                .map(|d| qual(&d.table, &d.column))
                .collect();
            sql.push_str(&format!(" GROUP BY {}", dims.join(", ")));
        }
        if let Some(order) = &self.order_by {
            if let Some(m) = self.measure_list.first() {
                sql.push_str(&format!(
                    " ORDER BY {}{}",
                    m.alias_or_default(),
                    if order.desc { " DESC" } else { "" }
                ));
            }
        }
        if let Some(n) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        sql
    }

    /// Rule-based conversion to a chart spec.
    pub fn to_chart(&self) -> ChartSpec {
        let mark = self
            .chart
            .as_deref()
            .and_then(Mark::parse)
            .unwrap_or(Mark::Bar);
        let x = self.dimension_list.first().map(|d| FieldDef {
            field: d.column.clone(),
            aggregate: None,
        });
        let y = self.measure_list.first().map(|m| FieldDef {
            field: m.column.clone().unwrap_or_else(|| "*".into()),
            aggregate: Some(if m.aggregate == "avg" {
                "avg".into()
            } else {
                m.aggregate.clone()
            }),
        });
        let filters = self
            .condition_list
            .iter()
            .map(|c| ChartFilter {
                column: c.column.clone(),
                op: c.op.clone(),
                value: c.value.clone(),
            })
            .collect();
        ChartSpec {
            mark,
            data: self.tables().first().cloned().unwrap_or_default(),
            x,
            y,
            color: None,
            filters,
            limit: self.limit,
            sort_desc: self.order_by.as_ref().map(|o| o.desc),
            title: None,
        }
    }

    /// Rule-based conversion to a dscript pipeline.
    pub fn to_dscript(&self) -> String {
        let tables = self.tables();
        let base = tables
            .first()
            .cloned()
            .unwrap_or_else(|| "data".to_string());
        let mut lines = vec![format!("load {base}")];
        if self.clean.unwrap_or(false) {
            lines.push("dropna".to_string());
        }
        for c in &self.condition_list {
            let line = if c.op == "between" {
                let arr = c.value.as_array().cloned().unwrap_or_default();
                let lo = arr
                    .first()
                    .and_then(|v| v.as_str().map(String::from))
                    .unwrap_or_default();
                let hi = arr
                    .get(1)
                    .and_then(|v| v.as_str().map(String::from))
                    .unwrap_or_default();
                format!("filter {} between '{lo}' '{hi}'", c.column)
            } else if c.value.is_string() {
                format!(
                    "filter {} == '{}'",
                    c.column,
                    c.value.as_str().unwrap_or("")
                )
            } else {
                let op = if c.op == "=" { "==" } else { c.op.as_str() };
                format!("filter {} {op} {}", c.column, c.value)
            };
            lines.push(line);
        }
        for m in &self.measure_list {
            if let (Some(expr), Some(col)) = (&m.expr, &m.column) {
                lines.push(format!("derive {col} = {expr}"));
            }
        }
        if !self.measure_list.is_empty() {
            let aggs: Vec<String> = self
                .measure_list
                .iter()
                .map(|m| {
                    format!(
                        "{}({}) as {}",
                        m.aggregate,
                        m.column.clone().unwrap_or_else(|| "*".into()),
                        m.alias_or_default()
                    )
                })
                .collect();
            let dims: Vec<String> = self
                .dimension_list
                .iter()
                .map(|d| d.column.clone())
                .collect();
            lines.push(format!("groupby {}: {}", dims.join(", "), aggs.join(", ")));
        } else if !self.projection_list.is_empty() {
            let cols: Vec<String> = self
                .projection_list
                .iter()
                .map(|p| p.column.clone())
                .collect();
            lines.push(format!("select {}", cols.join(", ")));
        }
        if let Some(order) = &self.order_by {
            if let Some(m) = self.measure_list.first() {
                lines.push(format!(
                    "sort {}{}",
                    m.alias_or_default(),
                    if order.desc { " desc" } else { "" }
                ));
            }
        }
        if let Some(n) = self.limit {
            lines.push(format!("limit {n}"));
        }
        lines.join("\n")
    }
}

fn return_count_distinct(inner: &str, alias: &str) -> String {
    format!("COUNT(DISTINCT {inner}) AS {alias}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> String {
        serde_json::json!({
            "MeasureList": [{"table": "sales", "column": "amount", "aggregate": "sum", "expr": null, "alias": "sum_amount"}],
            "DimensionList": [{"table": "sales", "column": "region"}],
            "ConditionList": [{"table": "sales", "column": "ftime", "op": "between", "value": ["2024-01-01", "2024-12-31"]}],
            "ProjectionList": [],
            "OrderBy": {"target": "measure", "desc": true},
            "Limit": 5,
            "Chart": "bar"
        })
        .to_string()
    }

    #[test]
    fn validates_and_deserializes() {
        let spec = validate_dsl_json(&sample_json()).unwrap();
        assert_eq!(spec.measure_list[0].aggregate, "sum");
        assert_eq!(spec.dimension_list[0].column, "region");
        assert_eq!(spec.limit, Some(5));
    }

    #[test]
    fn rejects_bad_aggregate_and_op() {
        let bad = serde_json::json!({
            "MeasureList": [{"column": "x", "aggregate": "median"}],
            "ConditionList": [{"column": "y", "op": "like", "value": "a"}],
        })
        .to_string();
        let errs = validate_dsl_json(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("median")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("like")), "{errs:?}");
    }

    #[test]
    fn rejects_empty_spec_and_bad_between() {
        let errs = validate_dsl_json(
            r#"{"MeasureList":[],"ConditionList":[{"column":"x","op":"between","value":[1]}]}"#,
        )
        .unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("selects nothing")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("[lo, hi]")), "{errs:?}");
        assert!(validate_dsl_json("not json").is_err());
    }

    #[test]
    fn compiles_to_sql() {
        let spec = validate_dsl_json(&sample_json()).unwrap();
        let sql = spec.to_sql(None);
        assert_eq!(
            sql,
            "SELECT region, SUM(amount) AS sum_amount FROM sales \
             WHERE ftime BETWEEN '2024-01-01' AND '2024-12-31' \
             GROUP BY region ORDER BY sum_amount DESC LIMIT 5"
        );
    }

    #[test]
    fn compiles_to_chart_and_dscript() {
        let spec = validate_dsl_json(&sample_json()).unwrap();
        let chart = spec.to_chart();
        assert_eq!(chart.mark, Mark::Bar);
        assert_eq!(chart.x.as_ref().unwrap().field, "region");
        assert_eq!(chart.y.as_ref().unwrap().aggregate.as_deref(), Some("sum"));
        let ds = spec.to_dscript();
        assert!(ds.starts_with("load sales"), "{ds}");
        assert!(
            ds.contains("groupby region: sum(amount) as sum_amount"),
            "{ds}"
        );
    }

    #[test]
    fn sql_joins_follow_evidence_fks() {
        let ev = Evidence::from_schema(
            "table sales: region (str), amount (int)\n\
             table users: city (str), id (int)\n\
             fk sales.region = users.city\n",
        );
        let spec = DslSpec {
            measure_list: vec![DslMeasure {
                table: Some("sales".into()),
                column: Some("amount".into()),
                aggregate: "sum".into(),
                ..Default::default()
            }],
            dimension_list: vec![DslColumn {
                table: "users".into(),
                column: "city".into(),
            }],
            ..Default::default()
        };
        let sql = spec.to_sql(Some(&ev));
        assert!(
            sql.contains("JOIN users ON sales.region = users.city"),
            "{sql}"
        );
    }

    #[test]
    fn count_star_sql() {
        let spec = DslSpec {
            measure_list: vec![DslMeasure {
                aggregate: "count".into(),
                alias: Some("n".into()),
                table: Some("t".into()),
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(spec.to_sql(None), "SELECT COUNT(*) AS n FROM t");
    }
}
