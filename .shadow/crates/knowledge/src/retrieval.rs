//! Coarse-to-fine knowledge retrieval (paper §IV-C, Algorithm 2).

use crate::graph::{KnowledgeGraph, NodeId, NodeKind};
use crate::index::KnowledgeIndex;
use datalab_llm::{LanguageModel, Prompt};
use std::collections::HashMap;

/// Weights and limits for Algorithm 2.
#[derive(Debug, Clone)]
pub struct RetrievalConfig {
    /// Coarse candidate pool size per search mode (loose, recall-oriented).
    pub coarse_k: usize,
    /// Loose lexical threshold.
    pub lex_threshold: f64,
    /// Loose semantic threshold.
    pub sem_threshold: f64,
    /// Final top-K (set "relatively large" per the paper).
    pub top_k: usize,
    /// ω₁ — lexical weight.
    pub w_lex: f64,
    /// ω₂ — semantic weight.
    pub w_sem: f64,
    /// ω₃ — LLM relevance weight.
    pub w_llm: f64,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            coarse_k: 40,
            lex_threshold: 0.05,
            sem_threshold: 0.08,
            top_k: 24,
            w_lex: 0.35,
            w_sem: 0.30,
            w_llm: 0.35,
        }
    }
}

/// A retrieved node with its weighted matching score.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieved {
    /// The primary node (aliases already backtracked).
    pub node: NodeId,
    /// Final weighted score.
    pub score: f64,
}

/// Runs Algorithm 2: coarse lexical+semantic retrieval, alias
/// backtracking, fine-grained three-stage weighted ordering, top-K cut.
pub fn retrieve(
    llm: &dyn LanguageModel,
    graph: &KnowledgeGraph,
    index: &KnowledgeIndex,
    query: &str,
    config: &RetrievalConfig,
) -> Vec<Retrieved> {
    // ---- Coarse-grained retrieval (max recall) --------------------------
    let lex = index.lexical_search(query, config.coarse_k, config.lex_threshold);
    let sem = index.semantic_search(query, config.coarse_k, config.sem_threshold);

    // Normalise per-mode scores to [0,1] and merge per primary node.
    let lex_max = lex.first().map(|(_, s)| *s).unwrap_or(1.0).max(1e-9);
    let sem_max = sem.first().map(|(_, s)| *s).unwrap_or(1.0).max(1e-9);
    struct Cand {
        lex: f64,
        sem: f64,
    }
    let mut cands: HashMap<NodeId, Cand> = HashMap::new();
    for (idx, s) in &lex {
        let primary = graph.backtrack(index.entry(*idx).node);
        let e = cands.entry(primary).or_insert(Cand { lex: 0.0, sem: 0.0 });
        e.lex = e.lex.max(s / lex_max);
    }
    for (idx, s) in &sem {
        let primary = graph.backtrack(index.entry(*idx).node);
        let e = cands.entry(primary).or_insert(Cand { lex: 0.0, sem: 0.0 });
        e.sem = e.sem.max(s / sem_max);
    }

    // ---- Fine-grained ordering -------------------------------------------
    let mut scored: Vec<Retrieved> = cands
        .into_iter()
        .map(|(node, c)| {
            let llm_score = if config.w_llm > 0.0 {
                let candidate = graph.knowledge_line(node);
                llm.complete(
                    &Prompt::new("relevance")
                        .section("query", query)
                        .section("candidate", candidate)
                        .render(),
                )
                .trim()
                .parse::<f64>()
                .unwrap_or(0.0)
            } else {
                0.0
            };
            let score = config.w_lex * c.lex + config.w_sem * c.sem + config.w_llm * llm_score;
            Retrieved { node, score }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    scored.truncate(config.top_k);
    scored
}

/// Renders retrieved nodes (plus their alias edges and, for value nodes,
/// their parent columns) into the knowledge-section text the agents put
/// into prompts.
pub fn render_knowledge(graph: &KnowledgeGraph, retrieved: &[Retrieved]) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut push = |line: String| {
        if !lines.contains(&line) {
            lines.push(line);
        }
    };
    for r in retrieved {
        push(graph.knowledge_line(r.node));
        for alias in graph.aliases_of(r.node) {
            push(graph.knowledge_line(alias));
        }
        // A value node alone is hard to ground; include its column too.
        if graph.node(r.node).kind == NodeKind::Value {
            if let Some(col) = graph.parent(r.node) {
                push(graph.knowledge_line(col));
            }
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{ColumnKnowledge, JargonEntry, TableKnowledge};
    use crate::index::IndexTask;
    use datalab_llm::SimLlm;

    fn setup() -> (KnowledgeGraph, KnowledgeIndex) {
        let mut g = KnowledgeGraph::new();
        g.ingest_table(
            "biz",
            &TableKnowledge {
                name: "sales".into(),
                description: "daily product revenue".into(),
                columns: vec![
                    ColumnKnowledge {
                        name: "shouldincome_after".into(),
                        description: "income revenue after tax".into(),
                        aliases: vec!["income".into()],
                        ..Default::default()
                    },
                    ColumnKnowledge {
                        name: "prod_class4_name".into(),
                        description: "product line name".into(),
                        ..Default::default()
                    },
                    ColumnKnowledge {
                        name: "unrelated_blob".into(),
                        description: "internal checksum".into(),
                        ..Default::default()
                    },
                ],
                ..Default::default()
            },
        );
        let v = g.ingest_value(
            "sales",
            "prod_class4_name",
            "Tencent BI",
            "the BI product line",
        );
        g.add_alias("TencentBI", v);
        g.ingest_jargon(&JargonEntry {
            term: "arpu".into(),
            expansion: "average income per user".into(),
        });
        let idx = KnowledgeIndex::build(&g, IndexTask::General);
        (g, idx)
    }

    #[test]
    fn retrieves_alias_backtracked_primary() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let out = retrieve(
            &llm,
            &g,
            &idx,
            "show me the income of TencentBI this year",
            &RetrievalConfig::default(),
        );
        assert!(!out.is_empty());
        let names: Vec<&str> = out.iter().map(|r| g.node(r.node).name.as_str()).collect();
        assert!(names.contains(&"sales.shouldincome_after"), "{names:?}");
        // The value alias backtracks to the value node.
        assert!(names.iter().any(|n| n.contains("Tencent BI")), "{names:?}");
        // No alias nodes in the primary results.
        assert!(out.iter().all(|r| g.node(r.node).kind != NodeKind::Alias));
    }

    #[test]
    fn irrelevant_columns_rank_last_or_absent() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let out = retrieve(
            &llm,
            &g,
            &idx,
            "income of TencentBI",
            &RetrievalConfig::default(),
        );
        let pos = |name: &str| out.iter().position(|r| g.node(r.node).name == name);
        let income = pos("sales.shouldincome_after");
        let blob = pos("sales.unrelated_blob");
        match (income, blob) {
            (Some(i), Some(b)) => assert!(i < b, "income={i} blob={b}"),
            (Some(_), None) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rendered_knowledge_contains_alias_and_value_lines() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let out = retrieve(
            &llm,
            &g,
            &idx,
            "income of TencentBI",
            &RetrievalConfig::default(),
        );
        let text = render_knowledge(&g, &out);
        assert!(
            text.contains("alias income -> sales.shouldincome_after"),
            "{text}"
        );
        assert!(
            text.contains("value sales.prod_class4_name: 'Tencent BI'"),
            "{text}"
        );
    }

    #[test]
    fn top_k_limits_results() {
        let (g, idx) = setup();
        let llm = SimLlm::gpt4();
        let cfg = RetrievalConfig {
            top_k: 1,
            ..Default::default()
        };
        let out = retrieve(&llm, &g, &idx, "income", &cfg);
        assert_eq!(out.len(), 1);
    }
}
