//! Data-profiling fallback (paper §IV-C): when a table has no knowledge —
//! the in-the-wild case and every research benchmark — systematically
//! extract grounding evidence from the data itself. Stage 1 is
//! heuristics-based statistics; stage 2 is LLM interpretation producing
//! semantic descriptions.

use datalab_frame::{profile, DataFrame, DataType};
use datalab_llm::util::split_ident;
use datalab_llm::{LanguageModel, Prompt};

/// How many sample values to surface per low-cardinality column.
const SAMPLES_PER_COLUMN: usize = 6;
/// String columns with at most this many distinct values get a `values`
/// evidence line (enabling value-equality grounding).
const VALUE_LINE_MAX_DISTINCT: usize = 24;

/// The profiling result: evidence lines following the prompt contract
/// (schema / values / column description lines) ready to be placed in the
/// `profile` prompt section.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledTable {
    /// `table name: col (type), ...`
    pub schema_line: String,
    /// `values t.c: a, b, c` lines.
    pub value_lines: Vec<String>,
    /// `column t.c: ...` semantic description lines.
    pub column_lines: Vec<String>,
    /// One-sentence table summary.
    pub table_line: String,
}

impl ProfiledTable {
    /// Renders all evidence as one prompt section body.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema_line);
        out.push('\n');
        for l in &self.value_lines {
            out.push_str(l);
            out.push('\n');
        }
        for l in &self.column_lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&self.table_line);
        out.push('\n');
        out
    }
}

/// Runs both profiling stages over a table.
pub fn profile_table(
    llm: &dyn LanguageModel,
    name: &str,
    df: &DataFrame,
) -> Result<ProfiledTable, datalab_frame::FrameError> {
    let stats = profile(df, SAMPLES_PER_COLUMN)?;

    // ---- Stage 1: heuristics ---------------------------------------------
    let cols: Vec<String> = df
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{} ({})", f.name, f.dtype))
        .collect();
    let schema_line = format!("table {name}: {}", cols.join(", "));

    let mut value_lines = Vec::new();
    for c in &stats.columns {
        if c.dtype == DataType::Str && c.distinct_count <= VALUE_LINE_MAX_DISTINCT {
            let vals: Vec<String> = c.samples.iter().map(|v| v.render()).collect();
            if !vals.is_empty() {
                value_lines.push(format!("values {name}.{}: {}", c.name, vals.join(", ")));
            }
        }
    }

    // ---- Stage 2: LLM interpretation --------------------------------------
    // Column semantics: identifier words plus statistics give the model
    // something to say; this mirrors feeding the extracted information to
    // an LLM for a semantic description of each column.
    let mut column_lines = Vec::new();
    for c in &stats.columns {
        let ident = split_ident(&c.name).join(" ");
        let mut desc = ident.clone();
        match c.dtype {
            DataType::Int | DataType::Float => {
                if let (Some(min), Some(max)) = (&c.min, &c.max) {
                    desc.push_str(&format!(
                        " numeric measure ranging {} to {}",
                        min.render(),
                        max.render()
                    ));
                }
            }
            DataType::Str => {
                desc.push_str(&format!(
                    " categorical with {} distinct values",
                    c.distinct_count
                ));
            }
            DataType::Date => desc.push_str(" time dimension"),
            DataType::Bool => desc.push_str(" boolean flag"),
            DataType::Null => desc.push_str(" empty column"),
        }
        column_lines.push(format!("column {name}.{}: {desc}", c.name));
    }

    // Table-level summary via the model's summarisation skill.
    let facts = stats.describe();
    let summary = llm.complete(
        &Prompt::new("summarize")
            .section("facts", facts)
            .section("question", format!("what is the {name} table about"))
            .render(),
    );
    let table_line = format!("table {name}: {}", summary.trim());

    Ok(ProfiledTable {
        schema_line,
        value_lines,
        column_lines,
        table_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::Value;
    use datalab_llm::SimLlm;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "prod_class4_name",
                DataType::Str,
                vec!["Tencent BI".into(), "Cloud".into(), "Tencent BI".into()],
            ),
            (
                "shouldincome_after",
                DataType::Float,
                vec![Value::Float(1.5), Value::Float(2.5), Value::Float(3.0)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn produces_contract_lines() {
        let llm = SimLlm::gpt4();
        let p = profile_table(&llm, "sales", &df()).unwrap();
        assert!(p
            .schema_line
            .starts_with("table sales: prod_class4_name (str)"));
        assert!(p.value_lines[0].starts_with("values sales.prod_class4_name: Tencent BI, Cloud"));
        assert!(p
            .column_lines
            .iter()
            .any(|l| l.contains("column sales.shouldincome_after: shouldincome after numeric")));
        let rendered = p.render();
        assert!(rendered.contains("table sales"));
    }

    #[test]
    fn profiling_enables_value_grounding() {
        use datalab_llm::intent::{infer_intent, Evidence};
        let llm = SimLlm::gpt4();
        let p = profile_table(&llm, "sales", &df()).unwrap();
        let mut ev = Evidence::from_schema(&p.render());
        ev.absorb_knowledge(&p.render());
        let intent = infer_intent("average shouldincome_after for Tencent BI", &ev);
        assert!(intent.filters.iter().any(|f| matches!(
            &f.value,
            datalab_llm::intent::FilterValue::Str(s) if s == "Tencent BI"
        )));
    }
}
