//! Read-only memory-mapped files, without the `libc` crate.
//!
//! Recovery reads — the snapshot and the WAL — go through
//! [`MappedFile`], so scanning a multi-megabyte log of CSV frames and
//! embedding tables costs page-cache mappings, not a heap copy of the
//! whole file. On targets without the `mmap` symbol (or when the map
//! call fails, e.g. on an empty file or an exotic filesystem) the shim
//! falls back to reading the file into memory; callers see the same
//! `&[u8]` either way.

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only view of a file's bytes: an `mmap` when the platform
/// provides one, an owned buffer otherwise.
#[derive(Debug)]
pub struct MappedFile {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over a file we opened —
// an immutable byte region. Nothing ever writes through `ptr`, so
// sharing or sending the view across threads is no different from
// sharing a `&[u8]`.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps (or reads) the file at `path`. A missing file is an error;
    /// an empty file yields an empty view.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let file = File::open(path)?;
        MappedFile::open_from(&file)
    }

    /// Maps (or reads) an already-open file from offset 0.
    pub fn open_from(file: &File) -> io::Result<MappedFile> {
        let len = file.metadata()?.len();
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty slice is
            // exactly equivalent.
            return Ok(MappedFile {
                backing: Backing::Owned(Vec::new()),
            });
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        {
            if let Some(ptr) = unix_mmap::map_readonly(file, len) {
                return Ok(MappedFile {
                    backing: Backing::Mapped { ptr, len },
                });
            }
        }
        // Fallback: plain read from offset 0, regardless of the
        // handle's cursor. Same bytes, one copy.
        Ok(MappedFile {
            backing: Backing::Owned(read_all_at_start(file, len)?),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr` is a live PROT_READ mapping of exactly
                // `len` bytes, unmapped only in Drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned(buf) => buf,
        }
    }

    /// Byte length of the view.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the view is an actual memory mapping (false = the
    /// read-the-file fallback or an empty file).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

#[cfg(unix)]
fn read_all_at_start(file: &File, len: usize) -> io::Result<Vec<u8>> {
    use std::os::unix::fs::FileExt;
    let mut buf = vec![0u8; len];
    file.read_exact_at(&mut buf, 0)?;
    Ok(buf)
}

#[cfg(not(unix))]
fn read_all_at_start(file: &File, len: usize) -> io::Result<Vec<u8>> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = file.try_clone()?;
    file.seek(SeekFrom::Start(0))?;
    let mut buf = Vec::with_capacity(len);
    file.read_to_end(&mut buf)?;
    Ok(buf)
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            unix_mmap::unmap(*ptr, *len);
        }
    }
}

#[cfg(unix)]
mod unix_mmap {
    //! `mmap`/`munmap` without the libc crate: the symbols exist in
    //! every libc this workspace targets, and the flag values used here
    //! are identical on Linux, Android, and macOS.

    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut std::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut std::ffi::c_void;
        fn munmap(addr: *mut std::ffi::c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only; `None` when the kernel
    /// refuses (callers fall back to reading the file).
    pub fn map_readonly(file: &File, len: usize) -> Option<*mut u8> {
        // SAFETY: fd is a valid open file descriptor for `file`; len is
        // non-zero (checked by the caller); a PROT_READ/MAP_PRIVATE
        // mapping cannot alias writable memory.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr as isize == -1 {
            None
        } else {
            Some(ptr.cast())
        }
    }

    /// Unmaps a region returned by [`map_readonly`].
    pub fn unmap(ptr: *mut u8, len: usize) {
        // SAFETY: `(ptr, len)` came from a successful mmap and is
        // unmapped exactly once (Drop).
        unsafe {
            munmap(ptr.cast(), len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "datalab-store-mmap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic", b"hello, mapped world");
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), b"hello, mapped world");
        assert_eq!(map.len(), 19);
        #[cfg(unix)]
        assert!(map.is_mapped(), "unix targets should really map");
    }

    #[test]
    fn empty_file_is_an_empty_view() {
        let path = temp_file("empty", b"");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
    }

    #[test]
    fn missing_file_is_an_error() {
        let path = std::env::temp_dir().join("datalab-store-mmap-definitely-missing");
        assert!(MappedFile::open(&path).is_err());
    }

    #[test]
    fn view_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedFile>();
    }
}
