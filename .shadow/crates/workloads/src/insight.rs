//! NL2Insight benchmark generators: DABench-like (closed-form questions
//! with exact numeric answers) and InsightBench-like (goal-driven
//! multi-insight discovery with planted patterns, scored by LLM judgment
//! and ROUGE-1).

use crate::data::{build_domain, Domain};
use crate::metrics::rouge1;
use datalab_agents::compute_facts;
use datalab_frame::Value;
use datalab_llm::{LanguageModel, Prompt};
use datalab_sql::run_sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One DABench-like closed-form question.
#[derive(Debug, Clone)]
pub struct DaTask {
    /// Index into the suite's domains.
    pub domain: usize,
    /// The question.
    pub question: String,
    /// Gold SQL whose single-cell (or single-row) result is the answer.
    pub gold_sql: String,
}

/// A DABench-like suite.
#[derive(Debug, Clone)]
pub struct DaSuite {
    /// Generated domains.
    pub domains: Vec<Domain>,
    /// Tasks.
    pub tasks: Vec<DaTask>,
}

/// DABench-like generator.
pub fn dabench_like(seed: u64, n_tasks: usize) -> DaSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains: Vec<Domain> = (0..3)
        .map(|i| build_domain(&mut rng, i, false, 48 + 8 * i))
        .collect();
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let di = i % domains.len();
        let fact = domains[di].fact();
        let t = &fact.name;
        let m = &fact.measures[rng.gen_range(0..fact.measures.len())];
        // Value filters mostly target the primary dimension (the one any
        // method can explore ad hoc); a minority need deeper profiling.
        let d = if rng.gen_bool(0.7) {
            &fact.dims[0]
        } else {
            &fact.dims[rng.gen_range(0..fact.dims.len())]
        };
        let vals = &fact.values[&d.physical];
        let v = &vals[rng.gen_range(0..vals.len())];
        let n = rng.gen_range(15..35);
        // Compound phrasing makes the run multi-agent: the answer has to
        // survive the communication protocol (where AutoGen's free-NL,
        // unselective retrieval loses precision).
        let compound = rng.gen_bool(0.4);
        let suffix = if compound {
            match rng.gen_range(0..3u32) {
                0 => " Then plot it as a bar chart.",
                1 => " Also check for anomalies in the data.",
                _ => " Then forecast it for next month.",
            }
        } else {
            ""
        };
        let (question, gold_sql) = match rng.gen_range(0..5u32) {
            4 => {
                let m2 = &fact.measures[(fact
                    .measures
                    .iter()
                    .position(|x| x.physical == m.physical)
                    .unwrap_or(0)
                    + 1)
                    % fact.measures.len()];
                (
                    format!(
                        "What is the total {} for '{v}' with {} greater than {n}?{suffix}",
                        m.natural, m2.natural
                    ),
                    format!(
                        "SELECT SUM({m0}) FROM {t} WHERE {d0} = '{v}' AND {m20} > {n}",
                        m0 = m.physical,
                        d0 = d.physical,
                        m20 = m2.physical
                    ),
                )
            }
            0 => (
                format!("What is the total {} for '{v}'?{suffix}", m.natural),
                format!(
                    "SELECT SUM({m0}) FROM {t} WHERE {d0} = '{v}'",
                    m0 = m.physical,
                    d0 = d.physical
                ),
            ),
            1 => (
                format!(
                    "How many records have {} greater than {n}?{suffix}",
                    m.natural
                ),
                format!("SELECT COUNT(*) FROM {t} WHERE {m0} > {n}", m0 = m.physical),
            ),
            2 => (
                format!("What is the average {} for '{v}'?{suffix}", m.natural),
                format!(
                    "SELECT AVG({m0}) FROM {t} WHERE {d0} = '{v}'",
                    m0 = m.physical,
                    d0 = d.physical
                ),
            ),
            _ => (
                format!("What is the maximum {} for '{v}'?{suffix}", m.natural),
                format!(
                    "SELECT MAX({m0}) FROM {t} WHERE {d0} = '{v}'",
                    m0 = m.physical,
                    d0 = d.physical
                ),
            ),
        };
        tasks.push(DaTask {
            domain: di,
            question,
            gold_sql,
        });
    }
    DaSuite { domains, tasks }
}

/// Extracts every number from free text (for answer checking).
fn numbers_in(text: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut flush = |cur: &mut String| {
        // A sentence period may trail the number ("total is 548.0.").
        let trimmed = cur.trim_end_matches('.');
        if let Ok(f) = trimmed.parse::<f64>() {
            out.push(f);
        }
        cur.clear();
    };
    for c in text.chars() {
        let second_dot = c == '.' && cur.contains('.');
        if (c.is_ascii_digit() || (c == '.' && !second_dot) || (c == '-' && cur.is_empty()))
            && !(second_dot)
        {
            cur.push(c);
        } else if !cur.is_empty() {
            flush(&mut cur);
        }
    }
    if !cur.is_empty() {
        flush(&mut cur);
    }
    out
}

/// Whether an answer (text and/or final frame) contains the gold value
/// within 1% relative tolerance.
pub fn answer_matches(
    gold: &Value,
    answer_text: &str,
    final_frame: Option<&datalab_frame::DataFrame>,
) -> bool {
    let Some(g) = gold.as_f64() else {
        return answer_text
            .to_lowercase()
            .contains(&gold.render().to_lowercase());
    };
    let close = |x: f64| {
        let scale = g.abs().max(1.0);
        (x - g).abs() <= 0.01 * scale
    };
    if numbers_in(answer_text).into_iter().any(close) {
        return true;
    }
    if let Some(df) = final_frame {
        for c in 0..df.n_cols() {
            if df.column_at(c).iter().filter_map(Value::as_f64).any(close) {
                return true;
            }
        }
    }
    false
}

/// The NL2Insight methods of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsightMethod {
    /// DataLab (full framework).
    DataLab,
    /// AutoGen (free-NL multi-agent chat).
    AutoGen,
    /// AgentPoirot (question decomposition).
    AgentPoirot,
}

impl InsightMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            InsightMethod::DataLab => "DataLab",
            InsightMethod::AutoGen => "AutoGen",
            InsightMethod::AgentPoirot => "AgentPoirot",
        }
    }
}

/// Evaluates a method on a DABench-like suite, returning Accuracy (%).
pub fn eval_dabench(suite: &DaSuite, method: InsightMethod, llm: &dyn LanguageModel) -> f64 {
    use datalab_agents::baselines;
    use datalab_agents::{CommunicationConfig, ProxyAgent, SharedBuffer};
    let mut hits = 0usize;
    // One analyst session per domain: the shared buffer persists across
    // its questions (DataLab's FSM keeps retrieval selective; AutoGen's
    // free-for-all context keeps growing).
    let buffers: Vec<SharedBuffer> = suite
        .domains
        .iter()
        .map(|_| SharedBuffer::default())
        .collect();
    for task in &suite.tasks {
        let domain = &suite.domains[task.domain];
        let schema = domain.schema_section();
        // Sample values matter for grounding quoted literals.
        let mut schema_plus = schema.clone();
        for t in &domain.tables {
            for (col, vals) in &t.values {
                schema_plus.push_str(&format!("values {}.{col}: {}\n", t.name, vals.join(", ")));
            }
        }
        let gold_frame = run_sql(&task.gold_sql, &domain.db).expect("gold runs");
        let gold = gold_frame.column_at(0)[0].clone();
        let (answer, frame) = match method {
            InsightMethod::DataLab => {
                let proxy = ProxyAgent::new(llm, CommunicationConfig::default());
                let out = proxy.run_query_with_buffer(
                    &domain.db,
                    &schema_plus,
                    "",
                    &task.question,
                    "2026-07-06",
                    &buffers[task.domain],
                );
                // The platform surfaces every produced artifact (notebook
                // cells hold each agent's frame); the data-extraction
                // frame carries the closed-form answer.
                let frame = out
                    .frames
                    .get("sql_agent")
                    .or_else(|| out.frames.get("code_agent"))
                    .cloned()
                    .or(out.final_frame);
                (out.answer, frame)
            }
            InsightMethod::AutoGen => {
                let proxy = ProxyAgent::new(
                    llm,
                    CommunicationConfig {
                        use_fsm: false,
                        structured: false,
                        ..Default::default()
                    },
                );
                // AutoGen has no profiling module; its chat agents peek
                // at some data ad hoc (first dimension's values only).
                let mut schema_autogen = schema.clone();
                for t in &domain.tables {
                    if let Some(d0) = t.dims.first() {
                        if let Some(vals) = t.values.get(&d0.physical) {
                            schema_autogen.push_str(&format!(
                                "values {}.{}: {}\n",
                                t.name,
                                d0.physical,
                                vals.join(", ")
                            ));
                        }
                    }
                }
                let out = proxy.run_query_with_buffer(
                    &domain.db,
                    &schema_autogen,
                    "",
                    &task.question,
                    "2026-07-06",
                    &buffers[task.domain],
                );
                // Free-NL chat: the answer is all you get (no structured
                // artifacts survive to be checked).
                (out.answer, None)
            }
            InsightMethod::AgentPoirot => (
                baselines::agent_poirot_nl2insight(
                    llm,
                    &domain.db,
                    &schema_plus,
                    &task.question,
                    "2026-07-06",
                ),
                None,
            ),
        };
        if answer_matches(&gold, &answer, frame.as_ref()) {
            hits += 1;
        }
    }
    100.0 * hits as f64 / suite.tasks.len().max(1) as f64
}

/// One InsightBench-like goal task.
#[derive(Debug, Clone)]
pub struct InsightTask {
    /// Index into the suite's domains.
    pub domain: usize,
    /// The analysis goal.
    pub goal: String,
    /// Gold summary (built from the planted/computable facts).
    pub gold_summary: String,
}

/// An InsightBench-like suite.
#[derive(Debug, Clone)]
pub struct InsightSuite {
    /// Generated domains (with planted anomalies).
    pub domains: Vec<Domain>,
    /// Tasks.
    pub tasks: Vec<InsightTask>,
}

/// InsightBench-like generator: plants a spike anomaly in each domain and
/// derives the gold summary from the facts genuinely computable from the
/// data.
pub fn insightbench_like(seed: u64, n_tasks: usize) -> InsightSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut domains: Vec<Domain> = (0..3)
        .map(|i| build_domain(&mut rng, i, false, 40 + 6 * i))
        .collect();
    // Plant a large spike in each fact table.
    for d in &mut domains {
        let fact_name = d.fact().name.clone();
        let df = d.db.get(&fact_name).expect("fact exists").clone();
        let mut spiked = df.clone();
        let mut row = df.row(0);
        let measure_idx = df
            .schema()
            .fields()
            .iter()
            .position(|f| f.dtype.is_numeric())
            .expect("numeric measure");
        row[measure_idx] = match df.column_at(measure_idx)[0] {
            Value::Int(_) => Value::Int(5000),
            _ => Value::Float(5000.0),
        };
        spiked.push_row(row).expect("row fits");
        d.db.insert(fact_name, spiked);
    }
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let di = i % domains.len();
        let fact_name = domains[di].fact().name.clone();
        let df = domains[di].db.get(&fact_name).expect("fact exists");
        let mut gold_lines: Vec<String> =
            compute_facts(df).into_iter().map(|f| f.statement).collect();
        gold_lines.push("there is a large anomalous spike in the data".to_string());
        tasks.push(InsightTask {
            domain: di,
            goal: format!(
                "Give a summary of the key insights, trends and anomalies in the {fact_name} data."
            ),
            gold_summary: gold_lines.join(". "),
        });
    }
    InsightSuite { domains, tasks }
}

/// Scores for an InsightBench-like run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsightScores {
    /// LLM-judged alignment with the gold summary, 0-1 (the paper's
    /// LLaMA-3-Eval; our judge is the simulated model's relevance skill).
    pub llm_eval: f64,
    /// ROUGE-1 against the gold summary.
    pub rouge1: f64,
}

/// Evaluates a method on an InsightBench-like suite.
pub fn eval_insightbench(
    suite: &InsightSuite,
    method: InsightMethod,
    llm: &dyn LanguageModel,
    judge: &dyn LanguageModel,
) -> InsightScores {
    use datalab_agents::baselines;
    use datalab_agents::{CommunicationConfig, ProxyAgent};
    let mut eval_sum = 0.0;
    let mut rouge_sum = 0.0;
    for task in &suite.tasks {
        let domain = &suite.domains[task.domain];
        let schema = domain.schema_section();
        let answer = match method {
            InsightMethod::DataLab => {
                let proxy = ProxyAgent::new(llm, CommunicationConfig::default());
                proxy
                    .run_query(&domain.db, &schema, "", &task.goal, "2026-07-06")
                    .answer
            }
            InsightMethod::AutoGen => {
                let proxy = ProxyAgent::new(
                    llm,
                    CommunicationConfig {
                        use_fsm: false,
                        structured: false,
                        ..Default::default()
                    },
                );
                proxy
                    .run_query(&domain.db, &schema, "", &task.goal, "2026-07-06")
                    .answer
            }
            InsightMethod::AgentPoirot => baselines::agent_poirot_nl2insight(
                llm,
                &domain.db,
                &schema,
                &task.goal,
                "2026-07-06",
            ),
        };
        let judged: f64 = judge
            .complete(
                &Prompt::new("relevance")
                    .section("query", task.gold_summary.clone())
                    .section("candidate", answer.clone())
                    .render(),
            )
            .trim()
            .parse()
            .unwrap_or(0.0);
        eval_sum += judged;
        rouge_sum += rouge1(&answer, &task.gold_summary);
    }
    let n = suite.tasks.len().max(1) as f64;
    InsightScores {
        llm_eval: eval_sum / n,
        rouge1: rouge_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::SimLlm;

    #[test]
    fn dabench_gold_queries_run() {
        let suite = dabench_like(6, 24);
        for task in &suite.tasks {
            let out = run_sql(&task.gold_sql, &suite.domains[task.domain].db).unwrap();
            assert_eq!(out.n_rows(), 1);
        }
    }

    #[test]
    fn answer_matching() {
        assert!(answer_matches(
            &Value::Int(42),
            "the total is 42.00 units",
            None
        ));
        assert!(!answer_matches(&Value::Int(42), "the total is 99", None));
        let df = datalab_frame::DataFrame::from_columns(vec![(
            "x",
            datalab_frame::DataType::Float,
            vec![Value::Float(41.9)],
        )])
        .unwrap();
        assert!(answer_matches(
            &Value::Int(42),
            "no numbers here",
            Some(&df)
        ));
    }

    #[test]
    fn datalab_solves_most_dabench_tasks() {
        let suite = dabench_like(14, 18);
        let llm = SimLlm::gpt4();
        let acc = eval_dabench(&suite, InsightMethod::DataLab, &llm);
        assert!(acc >= 50.0, "{acc}");
    }

    #[test]
    fn insightbench_scores_are_sane() {
        let suite = insightbench_like(15, 6);
        let llm = SimLlm::gpt4();
        let s = eval_insightbench(&suite, InsightMethod::DataLab, &llm, &llm);
        assert!(s.llm_eval > 0.05 && s.llm_eval <= 1.0, "{s:?}");
        assert!(s.rouge1 > 0.05 && s.rouge1 <= 1.0, "{s:?}");
    }
}
