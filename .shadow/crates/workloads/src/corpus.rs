//! Serving-layer request corpus: the fleet's workload tasks repackaged
//! as HTTP-shaped tenant requests.
//!
//! The load generator (`datalab-bench`'s `loadgen` bin) and the CI
//! serving smoke both replay this corpus over real sockets, so it uses
//! the same generators — and therefore the same seeds and questions — as
//! [`crate::fleet::run_fleet`]. Each (workload family, domain) pair maps
//! to one tenant, mirroring how the fleet gives each domain its own
//! platform session.

use crate::fleet::{generate_workloads, FleetConfig};
use datalab_frame::csv::to_csv;

/// One CSV table to register for a tenant before replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusTable {
    /// Owning tenant.
    pub tenant: String,
    /// Table name inside the tenant's session.
    pub name: String,
    /// RFC-4180 CSV text (header row included).
    pub csv: String,
}

/// One query request to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRequest {
    /// Target tenant (owns the tables the question refers to).
    pub tenant: String,
    /// Workload family label (`nl2sql`, `nl2code`, `nl2vis`, `insight`).
    pub workload: String,
    /// Natural-language question.
    pub question: String,
}

/// A full serving corpus: tables to register, then requests to fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCorpus {
    /// Every tenant's tables, in registration order.
    pub tables: Vec<CorpusTable>,
    /// Requests in fleet task order (workload-major, then task order).
    pub requests: Vec<CorpusRequest>,
}

impl RequestCorpus {
    /// Distinct tenants, in first-appearance order.
    pub fn tenants(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for table in &self.tables {
            if !out.contains(&table.tenant.as_str()) {
                out.push(&table.tenant);
            }
        }
        out
    }
}

/// Builds the deterministic request corpus for a seed: same seed, same
/// tables, same questions, same order.
pub fn request_corpus(seed: u64, tasks_per_workload: usize) -> RequestCorpus {
    let sets = generate_workloads(&FleetConfig {
        seed,
        tasks_per_workload,
        ..FleetConfig::default()
    });

    let mut tables = Vec::new();
    let mut requests = Vec::new();
    for set in &sets {
        for (domain_idx, domain) in set.domains.iter().enumerate() {
            let tenant = format!("{}-d{domain_idx}", set.workload);
            for name in domain.db.table_names() {
                if let Ok(df) = domain.db.get(name) {
                    tables.push(CorpusTable {
                        tenant: tenant.clone(),
                        name: name.clone(),
                        csv: to_csv(df),
                    });
                }
            }
        }
        for (domain_idx, question) in &set.tasks {
            requests.push(CorpusRequest {
                tenant: format!("{}-d{domain_idx}", set.workload),
                workload: set.workload.to_string(),
                question: question.clone(),
            });
        }
    }
    RequestCorpus { tables, requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_frame::csv::from_csv;

    #[test]
    fn corpus_covers_every_fleet_task() {
        let corpus = request_corpus(7, 2);
        // Four workload families × tasks_per_workload requests.
        assert_eq!(corpus.requests.len(), 4 * 2);
        for family in ["nl2sql", "nl2code", "nl2vis", "insight"] {
            assert!(
                corpus.requests.iter().any(|r| r.workload == family),
                "missing {family}"
            );
        }
        assert!(!corpus.tables.is_empty());
        // Every request's tenant has at least one table registered.
        for request in &corpus.requests {
            assert!(
                corpus.tables.iter().any(|t| t.tenant == request.tenant),
                "tenant {} has no tables",
                request.tenant
            );
        }
    }

    #[test]
    fn corpus_is_deterministic_in_the_seed() {
        let a = request_corpus(7, 2);
        let b = request_corpus(7, 2);
        assert_eq!(a, b);
        let c = request_corpus(8, 2);
        assert_ne!(
            a.requests.iter().map(|r| &r.question).collect::<Vec<_>>(),
            c.requests.iter().map(|r| &r.question).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_csv_round_trips_through_the_frame_parser() {
        let corpus = request_corpus(7, 1);
        for table in &corpus.tables {
            let df = from_csv(&table.csv)
                .unwrap_or_else(|e| panic!("{}/{}: {e:?}", table.tenant, table.name));
            assert!(df.n_rows() > 0, "{}/{} is empty", table.tenant, table.name);
        }
    }

    #[test]
    fn tenants_are_listed_once_in_order() {
        let corpus = request_corpus(7, 1);
        let tenants = corpus.tenants();
        let unique: std::collections::BTreeSet<&&str> = tenants.iter().collect();
        assert_eq!(
            unique.len(),
            tenants.len(),
            "duplicate tenant in {tenants:?}"
        );
        assert!(tenants.iter().any(|t| t.starts_with("nl2sql-d")));
    }
}
