//! NL2DSCode benchmark generators: DS-1000-like (single transformation
//! problems with gold output frames) and DSEval-like (multi-constraint
//! session problems), both checked by executing the generated pipeline
//! and comparing frames.

use crate::data::{build_domain, Domain};
use datalab_frame::DataFrame;
use datalab_knowledge::profile_table;
use datalab_llm::LanguageModel;
use datalab_sql::{ex_equal, run_sql};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One NL2DSCode task.
#[derive(Debug, Clone)]
pub struct CodeTask {
    /// Index into the suite's domains.
    pub domain: usize,
    /// The NL problem statement.
    pub question: String,
    /// Gold result frame (computed from a gold query).
    pub gold_sql: String,
    /// Whether output row order matters.
    pub ordered: bool,
}

/// A generated suite.
#[derive(Debug, Clone)]
pub struct CodeSuite {
    /// Benchmark name.
    pub name: &'static str,
    /// Generated domains.
    pub domains: Vec<Domain>,
    /// Tasks.
    pub tasks: Vec<CodeTask>,
}

fn gen_task(rng: &mut StdRng, domain: &Domain, domain_idx: usize, sessioned: bool) -> CodeTask {
    let fact = domain.fact();
    let t = &fact.name;
    let m = &fact.measures[rng.gen_range(0..fact.measures.len())];
    let d = &fact.dims[rng.gen_range(0..fact.dims.len())];
    let vals = &fact.values[&d.physical];
    let v = &vals[rng.gen_range(0..vals.len())];
    let n = rng.gen_range(10..30);
    let k = rng.gen_range(2..4);

    let template = if sessioned {
        rng.gen_range(4..8u32)
    } else {
        rng.gen_range(0..4u32)
    };
    let (question, gold_sql, ordered) = match template {
        0 => (
            format!("Compute the total {} by {}.", m.natural, d.natural),
            format!("SELECT {d0}, SUM({m0}) FROM {t} GROUP BY {d0}", d0 = d.physical, m0 = m.physical),
            false,
        ),
        1 => (
            format!("Filter rows with {} greater than {n} and compute the average {} per {}.", m.natural, m.natural, d.natural),
            format!(
                "SELECT {d0}, AVG({m0}) FROM {t} WHERE {m0} > {n} GROUP BY {d0}",
                d0 = d.physical,
                m0 = m.physical
            ),
            false,
        ),
        2 => (
            format!("Count the records for '{v}' per {}.", d.natural),
            format!(
                "SELECT {d0}, COUNT(*) FROM {t} WHERE {d0} = '{v}' GROUP BY {d0}",
                d0 = d.physical
            ),
            false,
        ),
        3 => (
            format!("Compute the minimum {} for each {}.", m.natural, d.natural),
            format!("SELECT {d0}, MIN({m0}) FROM {t} GROUP BY {d0}", d0 = d.physical, m0 = m.physical),
            false,
        ),
        4 => (
            format!(
                "Transform the data: keep rows with {} at least {n}, then show the top {k} {}s by total {}.",
                m.natural, d.natural, m.natural
            ),
            format!(
                "SELECT {d0}, SUM({m0}) AS total FROM {t} WHERE {m0} >= {n} GROUP BY {d0} ORDER BY total DESC LIMIT {k}",
                d0 = d.physical,
                m0 = m.physical
            ),
            true,
        ),
        5 => (
            format!("Compute the number of distinct {} values in the data.", d.natural),
            format!("SELECT COUNT(DISTINCT {d0}) FROM {t}", d0 = d.physical),
            false,
        ),
        6 => {
            // The filter value lives in the *other* dimension: grounding
            // it needs sample knowledge (data profiling), not just the
            // schema — DataLab's edge on session-style problems.
            let d2 = &fact.dims[(fact
                .dims
                .iter()
                .position(|x| x.physical == d.physical)
                .unwrap_or(0)
                + 1)
                % fact.dims.len()];
            let v2 = &fact.values[&d2.physical][rng.gen_range(0..fact.values[&d2.physical].len())];
            (
                format!("Aggregate: maximum {} per {} for {v2}.", m.natural, d.natural),
                format!(
                    "SELECT {d0}, MAX({m0}) FROM {t} WHERE {d20} = '{v2}' GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical,
                    d20 = d2.physical
                ),
                false,
            )
        }
        _ => (
            format!("Pipeline: total {} by {} in 2023.", m.natural, d.natural),
            format!(
                "SELECT {d0}, SUM({m0}) FROM {t} WHERE {dt} BETWEEN '2023-01-01' AND '2023-12-31' GROUP BY {d0}",
                d0 = d.physical,
                m0 = m.physical,
                dt = fact.date.as_ref().expect("fact date").physical
            ),
            false,
        ),
    };
    CodeTask {
        domain: domain_idx,
        question,
        gold_sql,
        ordered,
    }
}

fn build_suite(name: &'static str, seed: u64, n_tasks: usize, sessioned: bool) -> CodeSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains: Vec<Domain> = (0..3)
        .map(|i| build_domain(&mut rng, i, false, 50 + 8 * i))
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let di = i % domains.len();
            gen_task(&mut rng, &domains[di], di, sessioned)
        })
        .collect();
    CodeSuite {
        name,
        domains,
        tasks,
    }
}

/// DS-1000-like: isolated transformation problems.
pub fn ds1000_like(seed: u64, n_tasks: usize) -> CodeSuite {
    build_suite("ds1000-like", seed, n_tasks, false)
}

/// DSEval-like: multi-constraint pipeline problems.
pub fn dseval_like(seed: u64, n_tasks: usize) -> CodeSuite {
    build_suite("dseval-like", seed, n_tasks, true)
}

/// The NL2DSCode methods of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeMethod {
    /// DataLab (profiling → DSL → dscript, execution retries).
    DataLab,
    /// CoML (one-shot code).
    CoML,
    /// Code Interpreter (execute + retry loop).
    CodeInterpreter,
}

impl CodeMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CodeMethod::DataLab => "DataLab",
            CodeMethod::CoML => "CoML",
            CodeMethod::CodeInterpreter => "Code Interpreter",
        }
    }
}

/// Evaluates a method on a suite, returning Pass Rate (%).
pub fn eval_code(suite: &CodeSuite, method: CodeMethod, llm: &dyn LanguageModel) -> f64 {
    use datalab_agents::baselines;
    let profiles: Vec<String> = suite
        .domains
        .iter()
        .map(|d| {
            d.db.table_names()
                .iter()
                .filter_map(|t| {
                    d.db.get(t)
                        .ok()
                        .and_then(|df| profile_table(llm, t, df).ok())
                })
                .map(|p| p.render())
                .collect::<String>()
        })
        .collect();
    let mut hits = 0usize;
    for task in &suite.tasks {
        let domain = &suite.domains[task.domain];
        let schema = domain.schema_section();
        let result: Result<DataFrame, _> = match method {
            CodeMethod::DataLab => baselines::datalab_nl2code(
                llm,
                &domain.db,
                &schema,
                &profiles[task.domain],
                &task.question,
                "2026-07-06",
            ),
            CodeMethod::CoML => baselines::coml_nl2code(llm, &domain.db, &schema, &task.question),
            CodeMethod::CodeInterpreter => {
                baselines::code_interpreter_nl2code(llm, &domain.db, &schema, &task.question, 3)
            }
        };
        let gold = run_sql(&task.gold_sql, &domain.db).expect("gold SQL must run");
        if let Ok(frame) = result {
            if ex_equal(&frame, &gold, task.ordered) {
                hits += 1;
            }
        }
    }
    100.0 * hits as f64 / suite.tasks.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::{ModelProfile, SimLlm};

    #[test]
    fn gold_queries_execute() {
        for suite in [ds1000_like(3, 30), dseval_like(3, 30)] {
            for task in &suite.tasks {
                run_sql(&task.gold_sql, &suite.domains[task.domain].db)
                    .unwrap_or_else(|e| panic!("gold failed: {} — {e}", task.gold_sql));
            }
        }
    }

    #[test]
    fn retry_loop_beats_one_shot() {
        // Code Interpreter's execution-feedback loop should outperform
        // CoML's single attempt — the Table I DS-1000 contrast.
        let suite = ds1000_like(17, 40);
        let llm = SimLlm::new(ModelProfile::llama31());
        let coml = eval_code(&suite, CodeMethod::CoML, &llm);
        let ci = eval_code(&suite, CodeMethod::CodeInterpreter, &llm);
        assert!(ci > coml, "ci={ci} coml={coml}");
    }

    #[test]
    fn datalab_pipeline_scores() {
        let suite = ds1000_like(19, 30);
        let llm = SimLlm::gpt4();
        let acc = eval_code(&suite, CodeMethod::DataLab, &llm);
        assert!(acc >= 40.0, "{acc}");
    }
}
