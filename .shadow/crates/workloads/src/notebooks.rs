//! The notebook corpus (paper §VII-E): generated multi-language DataLab
//! notebooks with realistic dependency chains, plus the context-management
//! task set of Table IV and the timing workload of Fig. 8.

use datalab_llm::count_tokens;
use datalab_llm::util::hash01;
use datalab_notebook::{
    retrieve_context, CellDag, CellId, CellKind, ContextConfig, Notebook, QueryScope, TaskType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated notebook with its ground-truth structure.
#[derive(Debug, Clone)]
pub struct NotebookCase {
    /// The notebook.
    pub notebook: Notebook,
    /// Data variables by chain: `(sql_var, chain cells in order)`.
    pub chains: Vec<(String, Vec<CellId>)>,
    /// Markdown cells carrying critical information: `(cell, variable it
    /// documents, paraphrased?)`. Paraphrased notes share little
    /// vocabulary with queries about the variable — the similarity-
    /// retrieval blind spot behind Table IV's accuracy drop.
    pub notes: Vec<(CellId, String, bool)>,
}

const TOPICS: &[(&str, &str, &str)] = &[
    // (table, dim, measure)
    ("orders", "region", "amount"),
    ("sessions", "game", "revenue"),
    ("usage", "service", "spend"),
    ("billing", "account", "charge"),
    ("traffic", "page", "visits"),
];

/// Generates one notebook with roughly `target_cells` cells.
pub fn generate_notebook(rng: &mut StdRng, target_cells: usize) -> NotebookCase {
    let mut nb = Notebook::new();
    let mut chains = Vec::new();
    let mut notes = Vec::new();
    let mut cells_made = 0usize;
    let mut chain_no = 0usize;
    while cells_made < target_cells {
        let (table, dim, measure) = TOPICS[chain_no % TOPICS.len()];
        let var = format!("df_{table}_{chain_no}");
        let mut chain = Vec::new();
        // SQL cell loading the data.
        let sql = nb.push_sql(
            format!(
                "SELECT {dim}, {measure}, day FROM {table} WHERE {measure} > {}",
                chain_no + 1
            ),
            var.clone(),
        );
        chain.push(sql);
        cells_made += 1;
        let mut prev = var.clone();
        // 0-3 python transformation cells.
        let n_py = rng
            .gen_range(0..4usize)
            .min(target_cells.saturating_sub(cells_made));
        for p in 0..n_py {
            let v = format!("t{chain_no}_{p}");
            let src = match p % 3 {
                0 => format!("{v} = {prev}.dropna()"),
                1 => format!("{v} = {prev}.groupby('{dim}').agg(total=('{measure}', 'sum'))"),
                _ => format!("{v} = {prev}.sort_values('{measure}', ascending=False)"),
            };
            let cell = nb.push(CellKind::Python, src);
            chain.push(cell);
            cells_made += 1;
            prev = v;
        }
        // Maybe a chart cell.
        if cells_made < target_cells && rng.gen_bool(0.6) {
            let chart = nb.push(
                CellKind::Chart,
                format!(
                    r#"{{"mark":"bar","data":"{prev}","x":{{"field":"{dim}"}},"y":{{"field":"{measure}","aggregate":"sum"}}}}"#
                ),
            );
            chain.push(chart);
            cells_made += 1;
        }
        // Maybe a markdown note. ~12% of notes are paraphrased (no shared
        // vocabulary with the variable name or topic words) — the
        // similarity-retrieval blind spot behind Table IV's accuracy drop.
        if cells_made < target_cells && rng.gen_bool(0.5) {
            let paraphrased = rng.gen_bool(0.10);
            let text = if paraphrased {
                // Deliberately oblique phrasing.
                format!(
                    "NB: remember the upstream extract double-counts weekends; \
                     divide by 1.08 before quoting numbers downstream (chain {chain_no})."
                )
            } else {
                format!(
                    "## Notes on {var}\nThe {table} extract keeps {dim} and {measure}; \
                     filtered to meaningful rows."
                )
            };
            let md = nb.push(CellKind::Markdown, text);
            notes.push((md, var.clone(), paraphrased));
            cells_made += 1;
        }
        chains.push((var, chain));
        chain_no += 1;
    }
    NotebookCase {
        notebook: nb,
        chains,
        notes,
    }
}

/// Generates the 50-notebook corpus with cell counts spread over
/// `2..=max_cells` (the paper's notebooks range 2-49).
pub fn notebook_corpus(seed: u64, n_notebooks: usize, max_cells: usize) -> Vec<NotebookCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_notebooks)
        .map(|i| {
            let target = 2 + (i * (max_cells - 2)) / n_notebooks.max(1);
            generate_notebook(&mut rng, target.max(2))
        })
        .collect()
}

/// One Table IV context-management task.
#[derive(Debug, Clone)]
pub struct ContextTask {
    /// Index into the corpus.
    pub case: usize,
    /// The user query.
    pub query: String,
    /// Task type (drives pruning).
    pub task_type: TaskType,
    /// Cells whose content the task genuinely needs.
    pub required: Vec<CellId>,
}

/// Derives 3 real-world queries per notebook (NL2SQL / NL2DSCode /
/// NL2VIS), as in §VII-E2.
pub fn context_tasks(corpus: &[NotebookCase], seed: u64) -> Vec<ContextTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut tasks = Vec::new();
    for (ci, case) in corpus.iter().enumerate() {
        if case.chains.is_empty() {
            continue;
        }
        for k in 0..3 {
            let (var, chain) = &case.chains[rng.gen_range(0..case.chains.len())];
            let sql_cell = chain[0];
            let (query, task_type, mut required) = match k {
                0 => (
                    format!("rewrite the sql for {var} to add a date filter"),
                    TaskType::Sql,
                    vec![sql_cell],
                ),
                1 => (
                    format!("transform {var}: drop nulls and aggregate the totals"),
                    TaskType::DsCode,
                    vec![sql_cell],
                ),
                _ => (
                    format!("plot {var} as a bar chart of the totals"),
                    TaskType::Vis,
                    vec![sql_cell],
                ),
            };
            // A critical markdown note about this variable is required
            // context when present.
            if let Some((md, _, _)) = case.notes.iter().find(|(_, v, _)| v == var) {
                required.push(*md);
            }
            tasks.push(ContextTask {
                case: ci,
                query,
                task_type,
                required,
            });
        }
    }
    tasks
}

/// Table IV result for one setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextScores {
    /// Accuracy (%).
    pub accuracy: f64,
    /// Mean token cost per query, in thousands.
    pub token_cost_k: f64,
}

/// Underlying task-completion rate given complete context. Failures
/// orthogonal to context selection (generation slips) hit every setting
/// equally; a deterministic per-task roll keeps runs reproducible.
const BASE_TASK_SUCCESS: f64 = 0.87;

/// Evaluates context management over the corpus (`use_dag = false` is the
/// Table IV S1 setting).
pub fn eval_context(
    corpus: &[NotebookCase],
    tasks: &[ContextTask],
    use_dag: bool,
) -> ContextScores {
    let mut correct = 0usize;
    let mut tokens_total = 0usize;
    let config = ContextConfig {
        use_dag,
        ..Default::default()
    };
    for task in tasks {
        let case = &corpus[task.case];
        let dag = CellDag::build(&case.notebook);
        let sel = retrieve_context(
            &case.notebook,
            &dag,
            &task.query,
            QueryScope::Notebook,
            task.task_type,
            &config,
        );
        // The prompt carries the selected cells plus the query itself.
        tokens_total += sel.tokens + count_tokens(&task.query) + 120;
        let has_required = task.required.iter().all(|r| sel.cells.contains(r));
        let base_ok = hash01(&format!("ctx-task|{}|{}", task.case, task.query)) < BASE_TASK_SUCCESS;
        if has_required && base_ok {
            correct += 1;
        }
    }
    let n = tasks.len().max(1);
    ContextScores {
        accuracy: 100.0 * correct as f64 / n as f64,
        token_cost_k: tokens_total as f64 / n as f64 / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_spans_cell_counts() {
        let corpus = notebook_corpus(8, 50, 49);
        assert_eq!(corpus.len(), 50);
        let counts: Vec<usize> = corpus.iter().map(|c| c.notebook.len()).collect();
        assert!(counts.iter().min().copied().unwrap() >= 2);
        assert!(counts.iter().max().copied().unwrap() >= 40, "{counts:?}");
    }

    #[test]
    fn generated_notebooks_have_real_dependencies() {
        let corpus = notebook_corpus(9, 10, 30);
        for case in &corpus {
            let dag = CellDag::build(&case.notebook);
            for (_, chain) in &case.chains {
                for w in chain.windows(2) {
                    assert!(
                        dag.dependencies(w[1]).contains(&w[0]),
                        "chain edge missing: {:?}",
                        w
                    );
                }
            }
        }
    }

    #[test]
    fn dag_pruning_cuts_tokens_with_small_accuracy_cost() {
        let corpus = notebook_corpus(10, 30, 49);
        let tasks = context_tasks(&corpus, 10);
        let with_dag = eval_context(&corpus, &tasks, true);
        let without = eval_context(&corpus, &tasks, false);
        assert!(
            with_dag.token_cost_k < without.token_cost_k * 0.6,
            "tokens: dag={} full={}",
            with_dag.token_cost_k,
            without.token_cost_k
        );
        assert!(
            without.accuracy >= with_dag.accuracy,
            "{without:?} vs {with_dag:?}"
        );
        assert!(with_dag.accuracy > 70.0, "{with_dag:?}");
        assert!(
            without.accuracy - with_dag.accuracy < 9.0,
            "{without:?} vs {with_dag:?}"
        );
    }
}
