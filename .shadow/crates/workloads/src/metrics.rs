//! Evaluation metrics for every experiment in the paper: execution
//! accuracy (delegated to the engines), pass rate, recall@K, ROUGE-1,
//! sentence-embedding similarity (SES), and token-cost aggregation.

use datalab_llm::text_similarity;
use datalab_llm::util::{stem, words};
use std::collections::HashSet;

/// Fraction of true outcomes, in percent.
pub fn pass_rate(results: &[bool]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    100.0 * results.iter().filter(|b| **b).count() as f64 / results.len() as f64
}

/// Recall@K: fraction of gold items present in the top-K ranked list
/// (case-insensitive).
pub fn recall_at_k(gold: &[String], ranked: &[String], k: usize) -> f64 {
    if gold.is_empty() {
        return 0.0;
    }
    let top: HashSet<String> = ranked.iter().take(k).map(|s| s.to_lowercase()).collect();
    let hits = gold
        .iter()
        .filter(|g| top.contains(&g.to_lowercase()))
        .count();
    hits as f64 / gold.len() as f64
}

/// ROUGE-1 F1: unigram overlap of the candidate against the reference
/// (distinct stemmed unigrams), penalising both omissions and padding.
pub fn rouge1(candidate: &str, reference: &str) -> f64 {
    let refs: HashSet<String> = words(reference).iter().map(|w| stem(w)).collect();
    let cand: HashSet<String> = words(candidate).iter().map(|w| stem(w)).collect();
    if refs.is_empty() || cand.is_empty() {
        return 0.0;
    }
    let inter = refs.intersection(&cand).count() as f64;
    let recall = inter / refs.len() as f64;
    let precision = inter / cand.len() as f64;
    if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    }
}

/// Sentence-embedding similarity in `[0, 1]` (the §VII-C1 SES metric,
/// M3-Embedding substituted by the hash embedder).
pub fn ses(a: &str, b: &str) -> f64 {
    text_similarity(a, b).clamp(0.0, 1.0)
}

/// Mean of a sample (0.0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Share of values at or above a threshold, in percent.
pub fn share_at_least(xs: &[f64], threshold: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    100.0 * xs.iter().filter(|x| **x >= threshold).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_rate_basic() {
        assert_eq!(pass_rate(&[true, false, true, true]), 75.0);
        assert_eq!(pass_rate(&[]), 0.0);
    }

    #[test]
    fn recall_at_k_counts_hits() {
        let gold = vec!["t.a".to_string(), "t.b".to_string()];
        let ranked = vec![
            "T.A".to_string(),
            "t.c".to_string(),
            "t.d".to_string(),
            "t.b".to_string(),
        ];
        assert_eq!(recall_at_k(&gold, &ranked, 5), 1.0);
        assert_eq!(recall_at_k(&gold, &ranked, 2), 0.5);
        assert_eq!(recall_at_k(&[], &ranked, 5), 0.0);
    }

    #[test]
    fn rouge1_overlap() {
        let r = rouge1(
            "the east region grew fastest",
            "east region grew 20% this quarter",
        );
        assert!(r > 0.4 && r < 1.0, "{r}");
        assert_eq!(rouge1("", "reference text"), 0.0);
        assert!((rouge1("a b c", "a b c") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ses_bounds() {
        let s = ses("daily revenue by region", "regional revenue per day");
        assert!(s > 0.3 && s <= 1.0, "{s}");
        assert!(ses("alpha beta", "zq xv") < 0.3);
    }

    #[test]
    fn aggregates() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((share_at_least(&[0.5, 0.8, 0.9], 0.7) - 200.0 / 3.0).abs() < 1e-9);
    }
}
