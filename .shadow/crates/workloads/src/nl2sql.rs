//! NL2SQL benchmark generators: a Spider-like suite (clean multi-table
//! schemas, quoted value literals) and a BIRD-like suite (dirty
//! abbreviated columns, unquoted value mentions, external evidence
//! strings, derived-formula questions) — the difficulty axes that
//! separate the two benchmarks in the paper.

use crate::data::{build_domain, Domain};
use datalab_knowledge::profile_table;
use datalab_llm::LanguageModel;
use datalab_sql::{ex_equal, run_sql};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One NL2SQL task.
#[derive(Debug, Clone)]
pub struct SqlTask {
    /// Index into the suite's domains.
    pub domain: usize,
    /// The NL question.
    pub question: String,
    /// Gold SQL (executed for the EX comparison).
    pub gold_sql: String,
    /// Whether the gold query's row order matters (ORDER BY present).
    pub ordered: bool,
    /// External evidence lines (BIRD-style; empty for Spider-like).
    /// Provided to *every* method, as the benchmark does.
    pub evidence: String,
}

/// A generated suite.
#[derive(Debug, Clone)]
pub struct SqlSuite {
    /// Benchmark name.
    pub name: &'static str,
    /// Generated domains.
    pub domains: Vec<Domain>,
    /// Tasks.
    pub tasks: Vec<SqlTask>,
}

fn gen_task(rng: &mut StdRng, domain: &Domain, domain_idx: usize, dirty: bool) -> SqlTask {
    let fact = domain.fact();
    let t = &fact.name;
    let m = &fact.measures[rng.gen_range(0..fact.measures.len())];
    let m2 = &fact.measures[rng.gen_range(0..fact.measures.len())];
    let d = &fact.dims[rng.gen_range(0..fact.dims.len())];
    let date = fact.date.as_ref().expect("fact tables have dates");
    let vals = &fact.values[&d.physical];
    let v = &vals[rng.gen_range(0..vals.len())];
    let k = rng.gen_range(2..5);
    let n = rng.gen_range(10..30);

    // Evidence lines (BIRD-style external knowledge): map natural terms to
    // the dirty physical schema. Spider-like tasks carry none.
    let mut evidence = String::new();
    if dirty {
        evidence.push_str(&format!("alias {} -> {t}.{}\n", m.natural, m.physical));
        evidence.push_str(&format!("alias {} -> {t}.{}\n", d.natural, d.physical));
    }

    // Dirty (BIRD-like) questions frequently mention stored values in
    // natural language ("for south china") — groundable only with sample
    // knowledge, which is what data profiling supplies.
    let extra_value = dirty && rng.gen_bool(0.4);
    let d2 = &fact.dims[(fact
        .dims
        .iter()
        .position(|x| x.physical == d.physical)
        .unwrap_or(0)
        + 1)
        % fact.dims.len()];
    let v2 = &fact.values[&d2.physical][rng.gen_range(0..fact.values[&d2.physical].len())];
    let (value_suffix, value_cond) = if extra_value {
        (
            format!(" for {v2}"),
            format!(" WHERE {} = '{v2}'", d2.physical),
        )
    } else {
        (String::new(), String::new())
    };

    let template = rng.gen_range(0..10u32);
    let (question, gold_sql, ordered) = match template {
        0 | 1 | 3 if extra_value => {
            let (agg_word, agg_sql) = match template {
                0 => ("total", "SUM"),
                1 => ("average", "AVG"),
                _ => ("maximum", "MAX"),
            };
            (
                format!("What is the {agg_word} {} by {}{}?", m.natural, d.natural, value_suffix),
                format!(
                    "SELECT {d0}, {agg_sql}({m0}) FROM {t}{value_cond} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            )
        }
        0 => (
            format!("What is the total {} by {}?", m.natural, d.natural),
            format!("SELECT {d0}, SUM({m0}) FROM {t} GROUP BY {d0}", d0 = d.physical, m0 = m.physical),
            false,
        ),
        1 => (
            format!("Show the average {} for each {}.", m.natural, d.natural),
            format!("SELECT {d0}, AVG({m0}) FROM {t} GROUP BY {d0}", d0 = d.physical, m0 = m.physical),
            false,
        ),
        2 => (
            format!("How many records are there per {}?", d.natural),
            format!("SELECT {d0}, COUNT(*) FROM {t} GROUP BY {d0}", d0 = d.physical),
            false,
        ),
        3 => (
            format!("What is the maximum {} by {}?", m.natural, d.natural),
            format!("SELECT {d0}, MAX({m0}) FROM {t} GROUP BY {d0}", d0 = d.physical, m0 = m.physical),
            false,
        ),
        4 => (
            format!("List the top {k} {}s by total {}.", d.natural, m.natural),
            format!(
                "SELECT {d0}, SUM({m0}) AS total FROM {t} GROUP BY {d0} ORDER BY total DESC LIMIT {k}",
                d0 = d.physical,
                m0 = m.physical
            ),
            true,
        ),
        5 => {
            // Value filter: quoted for clean schemas, natural mention for
            // dirty ones (the BIRD difficulty — needs sample knowledge).
            let question = if dirty {
                format!("What is the total {} for {v}?", m.natural)
            } else {
                format!("What is the total {} for '{v}'?", m.natural)
            };
            (
                question,
                format!(
                    "SELECT SUM({m0}) FROM {t} WHERE {d0} = '{v}'",
                    m0 = m.physical,
                    d0 = d.physical
                ),
                false,
            )
        }
        6 => {
            // BIRD evidence covers every term the question uses.
            if dirty {
                evidence.push_str(&format!("alias {} -> {t}.{}\n", m2.natural, m2.physical));
            }
            (
                format!(
                    "Show the average {} by {} with {} greater than {n}.",
                    m.natural, d.natural, m2.natural
                ),
                format!(
                    "SELECT {d0}, AVG({m0}) FROM {t} WHERE {m20} > {n} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical,
                    m20 = m2.physical
                ),
                false,
            )
        }
        7 => (
            format!("What is the total {} by {} in 2023?", m.natural, d.natural),
            format!(
                "SELECT {d0}, SUM({m0}) FROM {t} WHERE {dt} BETWEEN '2023-01-01' AND '2023-12-31' GROUP BY {d0}",
                d0 = d.physical,
                m0 = m.physical,
                dt = date.physical
            ),
            false,
        ),
        8 => {
            // Join through the declared FK to the lookup table's label.
            let (t1, c1, t2, c2) = &domain.fks[0];
            let label = &domain.tables[1].dims[1];
            (
                format!("What is the total {} by {}?", m.natural, label.natural),
                format!(
                    "SELECT {t2}.{lbl}, SUM({t1}.{m0}) FROM {t1} JOIN {t2} ON {t1}.{c1} = {t2}.{c2} GROUP BY {t2}.{lbl}",
                    lbl = label.physical,
                    m0 = m.physical
                ),
                false,
            )
        }
        _ => {
            // Derived-formula question (needs the evidence formula on
            // dirty schemas — BIRD's hallmark).
            if dirty && fact.measures.len() >= 2 {
                let (a, b) = (&fact.measures[0], &fact.measures[1]);
                let mut task = SqlTask {
                    domain: domain_idx,
                    question: format!("What is the total margin by {}?", d.natural),
                    gold_sql: format!(
                        "SELECT {d0}, SUM({a0} - {b0}) FROM {t} GROUP BY {d0}",
                        d0 = d.physical,
                        a0 = a.physical,
                        b0 = b.physical
                    ),
                    ordered: false,
                    evidence,
                };
                task.evidence.push_str(&format!(
                    "derived {t}.margin = {} - {}\n",
                    a.physical, b.physical
                ));
                return task;
            }
            (
                format!("How many distinct {} are there?", d.natural),
                format!("SELECT COUNT(DISTINCT {d0}) FROM {t}", d0 = d.physical),
                false,
            )
        }
    };
    SqlTask {
        domain: domain_idx,
        question,
        gold_sql,
        ordered,
        evidence,
    }
}

fn build_suite(name: &'static str, seed: u64, n_tasks: usize, dirty: bool) -> SqlSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains: Vec<Domain> = (0..3)
        .map(|i| build_domain(&mut rng, i, dirty, 60 + 10 * i))
        .collect();
    let tasks: Vec<SqlTask> = (0..n_tasks)
        .map(|i| {
            let di = i % domains.len();
            gen_task(&mut rng, &domains[di], di, dirty)
        })
        .collect();
    SqlSuite {
        name,
        domains,
        tasks,
    }
}

/// Spider-like suite: clean schemas, quoted literals, no evidence.
pub fn spider_like(seed: u64, n_tasks: usize) -> SqlSuite {
    build_suite("spider-like", seed, n_tasks, false)
}

/// BIRD-like suite: dirty schemas, natural value mentions, evidence
/// strings, derived-formula questions.
pub fn bird_like(seed: u64, n_tasks: usize) -> SqlSuite {
    build_suite("bird-like", seed, n_tasks, true)
}

/// Few-shot example pool for DAIL-SQL (a held-out "training split" drawn
/// from the same template distribution).
pub fn few_shot_pool(
    suite_seed: u64,
    n: usize,
    dirty: bool,
) -> Vec<datalab_agents::baselines::FewShotExample> {
    let pool = build_suite("pool", suite_seed ^ 0x5f5f_5f5f, n, dirty);
    pool.tasks
        .into_iter()
        .map(|t| datalab_agents::baselines::FewShotExample {
            question: t.question,
            artifact: t.gold_sql,
        })
        .collect()
}

/// The NL2SQL methods of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlMethod {
    /// DataLab (profiling → DSL → rule-based SQL).
    DataLab,
    /// DataLab without the data-profiling fallback (design ablation).
    DataLabNoProfiling,
    /// DAIL-SQL (few-shot).
    DailSql,
    /// DIN-SQL (decomposed + self-correction).
    DinSql,
}

impl SqlMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SqlMethod::DataLab => "DataLab",
            SqlMethod::DataLabNoProfiling => "DataLab w/o profiling",
            SqlMethod::DailSql => "DAIL-SQL",
            SqlMethod::DinSql => "DIN-SQL",
        }
    }
}

/// Evaluates a method on a suite, returning Execution Accuracy (%).
pub fn eval_sql(suite: &SqlSuite, method: SqlMethod, llm: &dyn LanguageModel) -> f64 {
    use datalab_agents::baselines;
    // Profiles computed once per domain (DataLab's fallback grounding).
    let profiles: Vec<String> = suite
        .domains
        .iter()
        .map(|d| {
            d.db.table_names()
                .iter()
                .filter_map(|t| {
                    d.db.get(t)
                        .ok()
                        .and_then(|df| profile_table(llm, t, df).ok())
                })
                .map(|p| p.render())
                .collect::<String>()
        })
        .collect();
    let examples = few_shot_pool(1_234, 24, suite.name.starts_with("bird"));

    let mut hits = 0usize;
    for task in &suite.tasks {
        let domain = &suite.domains[task.domain];
        let schema = domain.schema_section();
        let sql = match method {
            SqlMethod::DataLab => {
                let profile = format!("{}{}", profiles[task.domain], task.evidence);
                baselines::datalab_nl2sql(
                    llm,
                    &domain.db,
                    &schema,
                    &profile,
                    &task.question,
                    "2026-07-06",
                )
            }
            SqlMethod::DataLabNoProfiling => baselines::datalab_nl2sql(
                llm,
                &domain.db,
                &schema,
                &task.evidence,
                &task.question,
                "2026-07-06",
            ),
            SqlMethod::DailSql => baselines::dail_sql(
                llm,
                &schema,
                &task.evidence,
                &examples,
                &task.question,
                "2026-07-06",
            ),
            SqlMethod::DinSql => {
                baselines::din_sql(llm, &schema, &task.evidence, &task.question, "2026-07-06")
            }
        };
        let gold = run_sql(&task.gold_sql, &domain.db).expect("gold SQL must run");
        if let Ok(result) = run_sql(&sql, &domain.db) {
            if ex_equal(&result, &gold, task.ordered) {
                hits += 1;
            }
        }
    }
    100.0 * hits as f64 / suite.tasks.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::SimLlm;

    #[test]
    fn gold_queries_all_execute() {
        for suite in [spider_like(11, 40), bird_like(11, 40)] {
            for task in &suite.tasks {
                let domain = &suite.domains[task.domain];
                run_sql(&task.gold_sql, &domain.db)
                    .unwrap_or_else(|e| panic!("gold failed: {} — {e}", task.gold_sql));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spider_like(5, 10);
        let b = spider_like(5, 10);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.gold_sql, y.gold_sql);
        }
    }

    #[test]
    fn datalab_beats_chance_on_spider_like() {
        let suite = spider_like(21, 30);
        let llm = SimLlm::gpt4();
        let acc = eval_sql(&suite, SqlMethod::DataLab, &llm);
        assert!(acc >= 50.0, "accuracy {acc}");
    }

    #[test]
    fn bird_like_requires_profiling() {
        // On the dirty suite DataLab (with profiling) should beat DAIL-SQL
        // (schema + examples only) — the central Table I contrast.
        let suite = bird_like(22, 40);
        let llm = SimLlm::gpt4();
        let datalab = eval_sql(&suite, SqlMethod::DataLab, &llm);
        let dail = eval_sql(&suite, SqlMethod::DailSql, &llm);
        assert!(
            datalab > dail,
            "datalab={datalab} dail={dail} — profiling advantage missing"
        );
    }
}
