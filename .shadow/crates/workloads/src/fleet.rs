//! Workload-driven fleet runs: drive sampled tasks from each benchmark
//! family through a full [`DataLab`] platform and fold every query's run
//! record into one [`FleetReport`].
//!
//! This is the report generator behind the CI regression gate: `obsdiff`
//! compares the JSON this module produces against a checked-in baseline.
//! With `workers > 1` the (workload, domain) sessions are sharded across
//! threads by [`crate::parallel`]; the merged report is identical to the
//! serial one up to wall-clock timing (see `FleetReport::comparable`).

use crate::data::Domain;
use crate::insight::dabench_like;
use crate::nl2code::ds1000_like;
use crate::nl2sql::spider_like;
use crate::nl2vis::nvbench_like;
use datalab_core::{
    DataLab, DataLabConfig, FleetReport, RequestContext, RunRecord, RunRecorder, TraceId,
};
use datalab_llm::ChaosConfig;
use std::collections::BTreeMap;
use std::time::Instant;

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Workload generator seed (kept fixed in CI so reports are
    /// comparable across runs).
    pub seed: u64,
    /// Tasks sampled from each of the four workload families.
    pub tasks_per_workload: usize,
    /// Worker threads for the sharded executor; `0` or `1` runs serial.
    pub workers: usize,
    /// Total model-transport fault rate injected into every session
    /// (split uniformly across the four fault kinds). `0.0` (the
    /// default) disables fault injection entirely, leaving the transport
    /// a bit-identical passthrough.
    pub chaos_rate: f64,
    /// Seed for the deterministic fault stream (independent of the
    /// workload generator seed).
    pub chaos_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 7,
            tasks_per_workload: 3,
            workers: 1,
            chaos_rate: 0.0,
            chaos_seed: 7,
        }
    }
}

/// The per-session platform configuration a fleet config implies: default
/// everything, plus fault injection when `chaos_rate > 0`.
pub(crate) fn lab_config(config: &FleetConfig) -> DataLabConfig {
    DataLabConfig {
        chaos: (config.chaos_rate > 0.0)
            .then(|| ChaosConfig::uniform(config.chaos_seed, config.chaos_rate)),
        ..DataLabConfig::default()
    }
}

/// One workload family's generated domains and `(domain index, question)`
/// tasks, in generation order.
pub(crate) struct WorkloadSet {
    /// Workload family name as passed to `DataLab::query_as`.
    pub(crate) workload: &'static str,
    /// Generated domains; tasks index into this.
    pub(crate) domains: Vec<Domain>,
    /// `(domain index, question)` pairs in task order.
    pub(crate) tasks: Vec<(usize, String)>,
}

/// Generates the four workload families in their fixed fleet order
/// (nl2sql, nl2code, nl2vis, insight).
pub(crate) fn generate_workloads(config: &FleetConfig) -> Vec<WorkloadSet> {
    let sql = spider_like(config.seed, config.tasks_per_workload);
    let code = ds1000_like(config.seed, config.tasks_per_workload);
    let vis = nvbench_like(config.seed, config.tasks_per_workload);
    let insight = dabench_like(config.seed, config.tasks_per_workload);
    vec![
        WorkloadSet {
            workload: "nl2sql",
            tasks: sql
                .tasks
                .iter()
                .map(|t| (t.domain, t.question.clone()))
                .collect(),
            domains: sql.domains,
        },
        WorkloadSet {
            workload: "nl2code",
            tasks: code
                .tasks
                .iter()
                .map(|t| (t.domain, t.question.clone()))
                .collect(),
            domains: code.domains,
        },
        WorkloadSet {
            workload: "nl2vis",
            tasks: vis
                .tasks
                .iter()
                .map(|t| (t.domain, t.question.clone()))
                .collect(),
            domains: vis.domains,
        },
        WorkloadSet {
            workload: "insight",
            tasks: insight
                .tasks
                .iter()
                .map(|t| (t.domain, t.question.clone()))
                .collect(),
            domains: insight.domains,
        },
    ]
}

/// Builds a fresh platform session seeded with the domain's tables.
/// Frames are Arc-shared into the session rather than deep-copied.
pub(crate) fn lab_for_domain(domain: &Domain, config: &DataLabConfig) -> DataLab {
    let mut lab = DataLab::new(config.clone());
    for name in domain.db.table_names() {
        if let Ok(df) = domain.db.get_shared(name) {
            let _ = lab.register_table(name, df);
        }
    }
    lab
}

fn run_tasks(recorder: &mut RunRecorder, set: &WorkloadSet, session_config: &DataLabConfig) {
    // One platform per domain, shared by that domain's tasks so notebook
    // context and history accumulate the way a real session would.
    let mut labs: BTreeMap<usize, DataLab> = BTreeMap::new();
    let mut task_in_domain: BTreeMap<usize, usize> = BTreeMap::new();
    for (domain_idx, question) in &set.tasks {
        let Some(domain) = set.domains.get(*domain_idx) else {
            continue;
        };
        let lab = labs
            .entry(*domain_idx)
            .or_insert_with(|| lab_for_domain(domain, session_config));
        let task_idx = task_in_domain.entry(*domain_idx).or_insert(0);
        let ctx = task_context(set.workload, *domain_idx, *task_idx);
        *task_idx += 1;
        lab.query_with_context(&ctx, set.workload, question);
    }
    for (_, mut lab) in labs {
        recorder.absorb(lab.take_run_records());
    }
}

/// The deterministic request context for one fleet task: a trace ID
/// derived from its (workload, domain, per-domain task index) position,
/// identical between the serial and sharded executors. Tracing only
/// tags span attributes and events, so `FleetReport::comparable()` and
/// the obsdiff baseline are unaffected.
pub(crate) fn task_context(workload: &str, domain_idx: usize, task_idx: usize) -> RequestContext {
    let id = format!("fleet-{workload}-d{domain_idx}-t{task_idx}");
    RequestContext::traced(TraceId::parse(&id).expect("fleet trace ids are valid"))
}

/// Runs sampled nl2sql / nl2code / nl2vis / insight tasks through the
/// platform (one run record per task) and returns the fleet report.
///
/// The report is deterministic in everything but its wall-clock fields
/// regardless of `config.workers`: each (workload, domain) session is an
/// isolated platform whose outputs depend only on its own prompt history,
/// and the sharded executor merges records in serial order.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    run_fleet_with_records(config).0
}

/// Like [`run_fleet`], but also hands back the raw run records so callers
/// can post-process beyond the aggregated report — the `fleet_report`
/// binary folds their span trees into collapsed-stack profiles
/// (`datalab_core::folded_profile`) for flamegraph rendering.
pub fn run_fleet_with_records(config: &FleetConfig) -> (FleetReport, Vec<RunRecord>) {
    let started = Instant::now();
    let sets = generate_workloads(config);
    let session_config = lab_config(config);
    let records = if config.workers > 1 {
        crate::parallel::run_fleet_sharded(&sets, config.workers, &session_config)
    } else {
        let mut recorder = RunRecorder::new();
        for set in &sets {
            run_tasks(&mut recorder, set, &session_config);
        }
        recorder.into_records()
    };
    let mut report = FleetReport::from_records(&records);
    report.wall_clock_us = started.elapsed().as_micros() as u64;
    report.workers = config.workers.max(1) as u64;
    (report, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_run_produces_one_record_per_task() {
        let config = FleetConfig {
            tasks_per_workload: 1,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.runs, 4);
        assert_eq!(report.passed + report.failed, 4);
        for family in ["nl2sql", "nl2code", "nl2vis", "insight"] {
            assert!(
                report.workloads.contains_key(family),
                "missing {family} in {:?}",
                report.workloads.keys().collect::<Vec<_>>()
            );
        }
        assert!(report.tokens.total > 0);
        assert!(report.llm.calls > 0);
        assert!(report.stage("execute").is_some());
        assert_eq!(report.workers, 1);
        // The report round-trips through its JSON wire format.
        let parsed = FleetReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn workloads_generate_in_fixed_family_order() {
        let sets = generate_workloads(&FleetConfig::default());
        let names: Vec<&str> = sets.iter().map(|s| s.workload).collect();
        assert_eq!(names, ["nl2sql", "nl2code", "nl2vis", "insight"]);
        for set in &sets {
            assert!(!set.tasks.is_empty(), "{} generated no tasks", set.workload);
            for (domain_idx, _) in &set.tasks {
                assert!(*domain_idx < set.domains.len());
            }
        }
    }
}
