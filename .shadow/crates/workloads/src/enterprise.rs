//! The Tencent-like enterprise corpus (paper §VII-C/D): dirty business
//! tables with script histories, lineage, expert annotations, a jargon
//! glossary, and curated value aliases — plus the task sets built on it
//! (knowledge-quality evaluation, schema linking, NL2DSL, and the
//! multi-agent questions of Table III).

use crate::data::{ColumnRole, TableSpec};
use datalab_frame::{DataFrame, DataType, Date, Value};
use datalab_knowledge::{
    generate_table_knowledge, GenerationConfig, GenerationReport, JargonEntry, KnowledgeGraph,
    Lineage, NodeKind, Script, TableKnowledge,
};
use datalab_llm::LanguageModel;
use datalab_sql::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Measure concepts: (physical, natural words, semi-clean?).
/// Semi-clean physical names share a token with the natural term, so the
/// no-knowledge baseline (S1) can sometimes ground them — matching the
/// paper's observation that S1 is degraded, not zero.
const MEASURES: &[(&str, &str, bool)] = &[
    ("shouldincome_after", "income", false),
    ("cost_amt", "cost", true),
    ("order_cnt", "orders", true),
    ("click_cnt", "clicks", true),
    ("usr_n", "active users", false),
    ("rfnd_amt", "refunds", false),
    ("imp_total", "impressions", false),
    ("dur_sec", "watch time", false),
    ("gmv_cny", "gross merchandise value", false),
    ("sub_n", "subscriptions", false),
    ("dl_cnt", "downloads", false),
    ("cvr_pct", "conversion rate", false),
];

/// Dimension concepts: (physical, natural, values, semi-clean?).
const DIMS: &[(&str, &str, &[&str], bool)] = &[
    (
        "prod_class4_name",
        "product line",
        &["Tencent BI", "Tencent Cloud", "Tencent Docs", "WeChat Pay"],
        false,
    ),
    (
        "rgn_cd",
        "region",
        &["south china", "north china", "overseas"],
        false,
    ),
    ("channel_type", "channel", &["app", "web", "partner"], true),
    ("plat_nm", "platform", &["ios", "android", "pc"], false),
    ("cust_tier", "customer tier", &["vip", "regular"], true),
    (
        "biz_unit",
        "business unit",
        &["gaming", "fintech", "media"],
        true,
    ),
];

/// One enterprise table with everything knowledge generation needs.
#[derive(Debug, Clone)]
pub struct EnterpriseTable {
    /// Semantic spec (dirty physical names, natural names).
    pub spec: TableSpec,
    /// Owning database name.
    pub database: String,
    /// Historical data-processing scripts.
    pub scripts: Vec<Script>,
    /// Lineage links.
    pub lineage: Lineage,
    /// Expert-annotated table description (SES ground truth).
    pub gold_table_description: String,
    /// Expert-annotated column descriptions (physical name → text).
    pub gold_column_descriptions: Vec<(String, String)>,
    /// Derived-column definitions the scripts exercise: (name, expr).
    pub derived: Vec<(String, String)>,
}

/// The full corpus.
#[derive(Debug, Clone)]
pub struct EnterpriseCorpus {
    /// All tables loaded with data.
    pub db: Database,
    /// Table metadata.
    pub tables: Vec<EnterpriseTable>,
    /// Curated jargon glossary.
    pub jargon: Vec<JargonEntry>,
    /// Curated value aliases: (term, table, column, stored value).
    pub value_aliases: Vec<(String, String, String, String)>,
}

impl EnterpriseCorpus {
    /// Schema prompt section over all tables.
    pub fn schema_section(&self) -> String {
        let mut s = String::new();
        for t in &self.tables {
            let df = self.db.get(&t.spec.name).expect("table exists");
            let cols: Vec<String> = df
                .schema()
                .fields()
                .iter()
                .map(|f| format!("{} ({})", f.name, f.dtype))
                .collect();
            s.push_str(&format!("table {}: {}\n", t.spec.name, cols.join(", ")));
        }
        s
    }

    /// Schema section for a single table.
    pub fn table_schema_section(&self, table: &str) -> String {
        let t = self
            .tables
            .iter()
            .find(|t| t.spec.name == table)
            .expect("known table");
        let df = self.db.get(&t.spec.name).expect("table exists");
        let cols: Vec<String> = df
            .schema()
            .fields()
            .iter()
            .map(|f| format!("{} ({})", f.name, f.dtype))
            .collect();
        format!("table {}: {}\n", t.spec.name, cols.join(", "))
    }
}

/// Builds the corpus: `n_tables` tables across two logical databases.
pub fn enterprise_corpus(seed: u64, n_tables: usize) -> EnterpriseCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut tables = Vec::with_capacity(n_tables);
    let teams = ["finance", "growth", "operations", "marketing", "platform"];

    for ti in 0..n_tables {
        let name = format!("dwd_biz_{:02}", ti + 1);
        let database = if ti < n_tables / 2 {
            "biz_dw"
        } else {
            "biz_ads"
        }
        .to_string();
        // 4 measures and 3 dims per table. The first ("primary") measure
        // is unique per table (ti indexes the pool), so questions about it
        // identify the table — schema linking must still *find* it.
        let nm = MEASURES.len();
        let nd = DIMS.len();
        let measures: Vec<&(&str, &str, bool)> =
            [ti % nm, (ti + 4) % nm, (ti + 7) % nm, (ti + 9) % nm]
                .iter()
                .map(|&i| &MEASURES[i])
                .collect();
        let dims: Vec<&(&str, &str, &[&str], bool)> = [ti % nd, (ti + 2) % nd, (ti + 3) % nd]
            .iter()
            .map(|&i| &DIMS[i])
            .collect();

        // Data.
        let n_rows = rng.gen_range(60..140);
        let base = Date::new(2024, 1, 1).expect("valid");
        let mut cols: Vec<(String, DataType, Vec<Value>)> = Vec::new();
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        for (phys, _, vals, _) in &dims {
            values.insert(
                phys.to_string(),
                vals.iter().map(|v| v.to_string()).collect(),
            );
            let col: Vec<Value> = (0..n_rows)
                .map(|_| Value::Str(vals[rng.gen_range(0..vals.len())].to_string()))
                .collect();
            cols.push((phys.to_string(), DataType::Str, col));
        }
        for (mi, (phys, _, _)) in measures.iter().enumerate() {
            let col: Vec<Value> = (0..n_rows)
                .map(|r| {
                    let v = 40.0 + 6.0 * mi as f64 + 0.1 * r as f64 + rng.gen_range(-9.0..9.0);
                    if mi % 2 == 0 {
                        Value::Float((v * 10.0).round() / 10.0)
                    } else {
                        Value::Int(v.max(1.0) as i64)
                    }
                })
                .collect();
            let dt = if mi % 2 == 0 {
                DataType::Float
            } else {
                DataType::Int
            };
            cols.push((phys.to_string(), dt, col));
        }
        cols.push((
            "ftime".to_string(),
            DataType::Date,
            (0..n_rows)
                .map(|r| Value::Date(base.add_days((r as i64 * 457) % 540)))
                .collect(),
        ));
        let refs: Vec<(&str, DataType, Vec<Value>)> = cols
            .iter()
            .map(|(n, t, v)| (n.as_str(), *t, v.clone()))
            .collect();
        db.insert(
            name.clone(),
            DataFrame::from_columns(refs).expect("valid schema"),
        );

        // Derived columns used by scripts (knowledge S3 material).
        let derived = vec![(
            "margin".to_string(),
            format!("{} - {}", measures[0].0, measures[1].0),
        )];

        // Script history: daily rollups written by professionals, whose
        // comments carry the natural terminology.
        let team = teams[ti % teams.len()];
        let mut scripts = Vec::new();
        for (si, (phys, natural, _)) in measures.iter().enumerate() {
            let dim = dims[si % dims.len()];
            scripts.push(Script::sql(format!(
                "-- daily {natural} rollup by {} for the {team} team\n\
                 SELECT {dim0}, SUM({phys}) AS total_{si}, {dexpr} AS {dname}\n\
                 FROM {name} WHERE ftime >= '2024-01-01' GROUP BY {dim0}",
                dim.1,
                dim0 = dim.0,
                dexpr = derived[0].1,
                dname = derived[0].0,
            )));
        }
        for (phys, natural, vals, _) in &dims {
            scripts.push(Script::sql(format!(
                "-- weekly {natural} breakdown covering {}\n\
                 SELECT {phys}, COUNT(*) AS n FROM {name} WHERE {phys} = '{}' GROUP BY {phys}",
                vals.join(" / "),
                vals[0],
            )));
        }

        // Expert annotations: ground truth for SES.
        let measure_naturals: Vec<&str> = measures.iter().map(|m| m.1).collect();
        let gold_table_description = format!(
            "daily {team} metrics covering {} broken down by {}",
            measure_naturals.join(", "),
            dims.iter().map(|d| d.1).collect::<Vec<_>>().join(", ")
        );
        let mut gold_column_descriptions: Vec<(String, String)> = Vec::new();
        for (phys, natural, _) in &measures {
            gold_column_descriptions.push((
                phys.to_string(),
                format!("{natural} metric aggregated daily for the {team} team"),
            ));
        }
        for (phys, natural, vals, _) in &dims {
            gold_column_descriptions.push((
                phys.to_string(),
                format!("{natural} dimension with values {}", vals.join(", ")),
            ));
        }

        let spec = TableSpec {
            name: name.clone(),
            measures: measures
                .iter()
                .map(|(p, n, _)| ColumnRole::new(p, n))
                .collect(),
            dims: dims
                .iter()
                .map(|(p, n, _, _)| ColumnRole::new(p, n))
                .collect(),
            date: Some(ColumnRole::new("ftime", "date")),
            values,
            n_rows,
        };
        let lineage = if ti > 0 {
            Lineage {
                upstream: vec![format!("dwd_biz_{:02}", ti)],
                downstream: vec![],
            }
        } else {
            Lineage::default()
        };
        tables.push(EnterpriseTable {
            spec,
            database,
            scripts,
            lineage,
            gold_table_description,
            gold_column_descriptions,
            derived,
        });
    }

    let jargon = vec![
        JargonEntry {
            term: "gmv".into(),
            expansion: "total income".into(),
        },
        JargonEntry {
            term: "arpu".into(),
            expansion: "average income per active users".into(),
        },
        JargonEntry {
            term: "ctr".into(),
            expansion: "clicks per impressions".into(),
        },
    ];
    let mut value_aliases = Vec::new();
    for t in &tables {
        for d in &t.spec.dims {
            if d.physical == "prod_class4_name" {
                for v in &t.spec.values[&d.physical] {
                    // "TencentBI" → value 'Tencent BI' — the paper's §IV-A example.
                    let term = v.replace(' ', "");
                    value_aliases.push((term, t.spec.name.clone(), d.physical.clone(), v.clone()));
                }
            }
        }
    }
    EnterpriseCorpus {
        db,
        tables,
        jargon,
        value_aliases,
    }
}

/// Output of the corpus-wide knowledge-generation pipeline.
pub struct GeneratedKnowledge {
    /// The populated knowledge graph.
    pub graph: KnowledgeGraph,
    /// Per-table knowledge.
    pub per_table: BTreeMap<String, TableKnowledge>,
    /// Per-table generation reports.
    pub reports: Vec<GenerationReport>,
}

/// Runs Algorithm 1 over every table and organises the results (plus the
/// curated glossary and value aliases) into the knowledge graph.
pub fn generate_corpus_knowledge(
    corpus: &EnterpriseCorpus,
    llm: &dyn LanguageModel,
) -> GeneratedKnowledge {
    let mut graph = KnowledgeGraph::new();
    let mut per_table = BTreeMap::new();
    let mut reports = Vec::new();
    let config = GenerationConfig::default();
    for t in &corpus.tables {
        let schema_line = corpus.table_schema_section(&t.spec.name);
        let (tk, report) = generate_table_knowledge(
            llm,
            &t.spec.name,
            &schema_line,
            &t.scripts,
            &t.lineage,
            &per_table,
            &config,
        );
        graph.ingest_table(&t.database, &tk);
        per_table.insert(t.spec.name.to_lowercase(), tk);
        reports.push(report);
    }
    for j in &corpus.jargon {
        graph.ingest_jargon(j);
    }
    for (term, table, column, value) in &corpus.value_aliases {
        let v = graph.ingest_value(table, column, value, "curated business value");
        graph.add_alias(term.clone(), v);
    }
    // Sample values become value nodes so retrieval can ground filters.
    for t in &corpus.tables {
        for d in &t.spec.dims {
            for v in &t.spec.values[&d.physical] {
                let name = format!("{}.{}={}", t.spec.name, d.physical, v);
                if graph.find(NodeKind::Value, &name).is_none() {
                    graph.ingest_value(&t.spec.name, &d.physical, v, "observed value");
                }
            }
        }
    }
    GeneratedKnowledge {
        graph,
        per_table,
        reports,
    }
}

/// One schema-linking task: question → gold `table.column` identifiers.
#[derive(Debug, Clone)]
pub struct LinkingTask {
    /// The question.
    pub question: String,
    /// Gold columns.
    pub gold: Vec<String>,
}

/// One NL2DSL task: question → gold SQL over the corpus database.
#[derive(Debug, Clone)]
pub struct DslTask {
    /// The table the question targets.
    pub table: String,
    /// The question.
    pub question: String,
    /// Gold SQL.
    pub gold_sql: String,
    /// Needs derived-column calculation logic (S3-only material)?
    pub needs_derived: bool,
}

/// Builds the §VII-C downstream task sets: schema-linking pairs and
/// NL2DSL pairs over the corpus.
pub fn downstream_tasks(
    corpus: &EnterpriseCorpus,
    seed: u64,
    n_linking: usize,
    n_dsl: usize,
) -> (Vec<LinkingTask>, Vec<DslTask>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
    let mut linking = Vec::with_capacity(n_linking);
    for i in 0..n_linking {
        let t = &corpus.tables[i % corpus.tables.len()];
        // The primary (table-unique) measure: real enterprise queries name
        // the business concept, never the physical table.
        let m = &t.spec.measures[0];
        let d = &t.spec.dims[rng.gen_range(0..t.spec.dims.len())];
        let question = match rng.gen_range(0..4u32) {
            0 => format!("show me the {} by {}", m.natural, d.natural),
            1 => format!("how does {} vary across {}", m.natural, d.natural),
            2 => {
                // Value-alias phrasing ("income of TencentBI") — needs the
                // curated glossary (S3) to ground the value and column.
                let vals = &t.spec.values[&d.physical];
                let v = vals[rng.gen_range(0..vals.len())].replace(' ', "");
                format!("show me the {} of {v} this year", m.natural)
            }
            _ => format!("{} breakdown per {}", m.natural, d.natural),
        };
        linking.push(LinkingTask {
            question,
            gold: vec![
                format!("{}.{}", t.spec.name, m.physical),
                format!("{}.{}", t.spec.name, d.physical),
            ],
        });
    }

    let mut dsl = Vec::with_capacity(n_dsl);
    for i in 0..n_dsl {
        let t = &corpus.tables[i % corpus.tables.len()];
        let name = &t.spec.name;
        let m = &t.spec.measures[rng.gen_range(0..t.spec.measures.len())];
        let d = &t.spec.dims[rng.gen_range(0..t.spec.dims.len())];
        let vals = &t.spec.values[&d.physical];
        let v = &vals[rng.gen_range(0..vals.len())];
        let (question, gold_sql, needs_derived) = match rng.gen_range(0..7u32) {
            5 => (
                // Analysts who know the physical schema type raw column
                // names — solvable without any knowledge (baseline floor).
                format!("total {} by {}", m.physical, d.physical),
                format!(
                    "SELECT {d0}, SUM({m0}) FROM {name} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            ),
            6 => (
                format!("average {} per {}", m.physical, d.physical),
                format!(
                    "SELECT {d0}, AVG({m0}) FROM {name} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            ),
            0 => (
                format!("total {} by {}", m.natural, d.natural),
                format!(
                    "SELECT {d0}, SUM({m0}) FROM {name} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            ),
            1 => (
                format!("average {} for each {}", m.natural, d.natural),
                format!(
                    "SELECT {d0}, AVG({m0}) FROM {name} GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            ),
            2 => {
                // Value-alias question ("TencentBI"-style) when available.
                let term = v.replace(' ', "");
                (
                    format!("show me the {} of {term} this year", m.natural),
                    format!(
                        "SELECT SUM({m0}) FROM {name} WHERE {d0} = '{v}' AND ftime BETWEEN '2026-01-01' AND '2026-12-31'",
                        m0 = m.physical,
                        d0 = d.physical
                    ),
                    false,
                )
            }
            3 => (
                format!("total margin by {}", d.natural),
                format!(
                    "SELECT {d0}, SUM({expr}) FROM {name} GROUP BY {d0}",
                    d0 = d.physical,
                    expr = t.derived[0].1
                ),
                true,
            ),
            _ => (
                format!("total {} by {} in 2024", m.natural, d.natural),
                format!(
                    "SELECT {d0}, SUM({m0}) FROM {name} WHERE ftime BETWEEN '2024-01-01' AND '2024-12-31' GROUP BY {d0}",
                    d0 = d.physical,
                    m0 = m.physical
                ),
                false,
            ),
        };
        dsl.push(DslTask {
            table: name.clone(),
            question,
            gold_sql,
            needs_derived,
        });
    }
    (linking, dsl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::SimLlm;
    use datalab_sql::run_sql;

    #[test]
    fn corpus_builds_with_expected_shape() {
        let c = enterprise_corpus(3, 10);
        assert_eq!(c.tables.len(), 10);
        assert_eq!(c.db.len(), 10);
        let total_cols: usize = c
            .tables
            .iter()
            .map(|t| c.db.get(&t.spec.name).unwrap().n_cols())
            .sum();
        assert!(total_cols >= 70, "{total_cols}");
        assert!(!c.jargon.is_empty());
        assert!(!c.value_aliases.is_empty());
    }

    #[test]
    fn knowledge_generation_populates_graph() {
        let c = enterprise_corpus(5, 4);
        let llm = SimLlm::gpt4();
        let gk = generate_corpus_knowledge(&c, &llm);
        assert!(gk.graph.len() > 30, "{}", gk.graph.len());
        assert_eq!(gk.reports.len(), 4);
        // At least one table learned its income column's semantics.
        let income = gk
            .per_table
            .values()
            .find_map(|tk| tk.column("shouldincome_after"));
        if let Some(col) = income {
            assert!(col.description.contains("income"), "{col:?}");
        }
    }

    #[test]
    fn downstream_gold_sql_runs() {
        let c = enterprise_corpus(7, 6);
        let (linking, dsl) = downstream_tasks(&c, 7, 20, 20);
        assert_eq!(linking.len(), 20);
        for task in &dsl {
            run_sql(&task.gold_sql, &c.db)
                .unwrap_or_else(|e| panic!("gold failed: {} — {e}", task.gold_sql));
        }
    }
}
