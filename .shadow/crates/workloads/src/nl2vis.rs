//! NL2VIS benchmark generators: nvBench-like (EX against gold charts)
//! and VisEval-like (pass rate + readability), with gold charts built
//! programmatically and rendered by the viz substrate.

use crate::data::{build_domain, Domain};
use datalab_knowledge::profile_table;
use datalab_llm::LanguageModel;
use datalab_viz::{
    charts_equal, readability_score, render, ChartFilter, ChartSpec, FieldDef, Mark, RenderedChart,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One NL2VIS task.
#[derive(Debug, Clone)]
pub struct VisTask {
    /// Index into the suite's domains.
    pub domain: usize,
    /// The NL request.
    pub question: String,
    /// Gold chart spec.
    pub gold_spec: ChartSpec,
}

/// A generated suite.
#[derive(Debug, Clone)]
pub struct VisSuite {
    /// Benchmark name.
    pub name: &'static str,
    /// Generated domains.
    pub domains: Vec<Domain>,
    /// Tasks.
    pub tasks: Vec<VisTask>,
}

fn gen_task(rng: &mut StdRng, domain: &Domain, domain_idx: usize, with_filters: bool) -> VisTask {
    let fact = domain.fact();
    let t = &fact.name;
    let m = &fact.measures[rng.gen_range(0..fact.measures.len())];
    let d = &fact.dims[rng.gen_range(0..fact.dims.len())];
    let date = fact.date.as_ref().expect("fact date");
    let n = rng.gen_range(10..25);

    let template = rng.gen_range(0..4u32);
    let (question, mark, x_field, agg): (String, Mark, String, &str) = match template {
        0 => (
            format!(
                "Show a bar chart of the total {} for each {}.",
                m.natural, d.natural
            ),
            Mark::Bar,
            d.physical.clone(),
            "sum",
        ),
        1 => (
            format!(
                "Draw a pie chart of the share of {} by {}.",
                m.natural, d.natural
            ),
            Mark::Pie,
            d.physical.clone(),
            "sum",
        ),
        2 => (
            format!(
                "Plot the trend of total {} over {}.",
                m.natural, date.natural
            ),
            Mark::Line,
            date.physical.clone(),
            "sum",
        ),
        _ => (
            format!(
                "Show a bar chart of the average {} by {}.",
                m.natural, d.natural
            ),
            Mark::Bar,
            d.physical.clone(),
            "avg",
        ),
    };
    let mut filters = Vec::new();
    let mut question = question;
    if with_filters && rng.gen_bool(0.5) {
        question = format!(
            "{} Only include rows with {} greater than {n}.",
            question, m.natural
        );
        filters.push(ChartFilter {
            column: m.physical.clone(),
            op: ">".into(),
            value: serde_json::json!(n),
        });
    }
    let gold_spec = ChartSpec {
        mark,
        data: t.clone(),
        x: Some(FieldDef {
            field: x_field,
            aggregate: None,
        }),
        y: Some(FieldDef {
            field: m.physical.clone(),
            aggregate: Some(agg.into()),
        }),
        color: None,
        filters,
        limit: None,
        sort_desc: None,
        title: None,
    };
    VisTask {
        domain: domain_idx,
        question,
        gold_spec,
    }
}

fn build_suite(name: &'static str, seed: u64, n_tasks: usize, with_filters: bool) -> VisSuite {
    let mut rng = StdRng::seed_from_u64(seed);
    let domains: Vec<Domain> = (0..3)
        .map(|i| build_domain(&mut rng, i, false, 40 + 6 * i))
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let di = i % domains.len();
            gen_task(&mut rng, &domains[di], di, with_filters)
        })
        .collect();
    VisSuite {
        name,
        domains,
        tasks,
    }
}

/// nvBench-like: chart EX over simple single-table requests.
pub fn nvbench_like(seed: u64, n_tasks: usize) -> VisSuite {
    build_suite("nvbench-like", seed, n_tasks, false)
}

/// VisEval-like: adds filter clauses; scored by pass rate + readability.
pub fn viseval_like(seed: u64, n_tasks: usize) -> VisSuite {
    build_suite("viseval-like", seed, n_tasks, true)
}

/// The NL2VIS methods of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisMethod {
    /// DataLab (profiling → DSL → rule-based chart with validation retry).
    DataLab,
    /// LIDA (summarise → goal → grammar; titles charts).
    Lida,
    /// Chat2Vis (direct prompt).
    Chat2Vis,
}

impl VisMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            VisMethod::DataLab => "DataLab",
            VisMethod::Lida => "LIDA",
            VisMethod::Chat2Vis => "Chat2Vis",
        }
    }
}

/// Scores for one NL2VIS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisScores {
    /// Execution accuracy vs gold charts (%).
    pub ex: f64,
    /// Pass rate: valid, renderable charts (%).
    pub pass_rate: f64,
    /// Mean readability score (1-5) over passing charts.
    pub readability: f64,
}

/// Evaluates a method on a suite.
pub fn eval_vis(suite: &VisSuite, method: VisMethod, llm: &dyn LanguageModel) -> VisScores {
    use datalab_agents::baselines;
    let profiles: Vec<String> = suite
        .domains
        .iter()
        .map(|d| {
            d.db.table_names()
                .iter()
                .filter_map(|t| {
                    d.db.get(t)
                        .ok()
                        .and_then(|df| profile_table(llm, t, df).ok())
                })
                .map(|p| p.render())
                .collect::<String>()
        })
        .collect();
    let mut ex_hits = 0usize;
    let mut passes = 0usize;
    let mut readability_sum = 0.0;
    for task in &suite.tasks {
        let domain = &suite.domains[task.domain];
        let schema = domain.schema_section();
        let out: Result<(ChartSpec, RenderedChart), _> = match method {
            VisMethod::DataLab => baselines::datalab_nl2vis(
                llm,
                &domain.db,
                &schema,
                &profiles[task.domain],
                &task.question,
                "2026-07-06",
            ),
            VisMethod::Lida => baselines::lida_nl2vis(
                llm,
                &domain.db,
                &schema,
                &profiles[task.domain],
                &task.question,
            ),
            VisMethod::Chat2Vis => {
                baselines::chat2vis_nl2vis(llm, &domain.db, &schema, &task.question)
            }
        };
        let gold_df = domain.db.get(&task.gold_spec.data).expect("gold table");
        let gold_chart = render(&task.gold_spec, gold_df).expect("gold renders");
        if let Ok((spec, chart)) = out {
            passes += 1;
            readability_sum += readability_score(&spec, &chart);
            if charts_equal(&chart, &gold_chart) {
                ex_hits += 1;
            }
        }
    }
    let n = suite.tasks.len().max(1) as f64;
    VisScores {
        ex: 100.0 * ex_hits as f64 / n,
        pass_rate: 100.0 * passes as f64 / n,
        readability: if passes > 0 {
            readability_sum / passes as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalab_llm::SimLlm;

    #[test]
    fn gold_charts_render() {
        for suite in [nvbench_like(4, 24), viseval_like(4, 24)] {
            for task in &suite.tasks {
                let df = suite.domains[task.domain]
                    .db
                    .get(&task.gold_spec.data)
                    .unwrap();
                render(&task.gold_spec, df).expect("gold chart renders");
            }
        }
    }

    #[test]
    fn datalab_scores_reasonably() {
        let suite = nvbench_like(9, 24);
        let llm = SimLlm::gpt4();
        let s = eval_vis(&suite, VisMethod::DataLab, &llm);
        assert!(s.pass_rate >= 60.0, "{s:?}");
        assert!(s.ex >= 30.0, "{s:?}");
    }

    #[test]
    fn lida_titles_boost_readability() {
        let suite = viseval_like(10, 24);
        let llm = SimLlm::gpt4();
        let lida = eval_vis(&suite, VisMethod::Lida, &llm);
        let c2v = eval_vis(&suite, VisMethod::Chat2Vis, &llm);
        assert!(
            lida.readability >= c2v.readability,
            "lida={lida:?} c2v={c2v:?}"
        );
    }
}
