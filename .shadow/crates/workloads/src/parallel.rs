//! Sharded parallel fleet executor.
//!
//! A fleet run decomposes into independent (workload, domain) **shards**:
//! every domain keeps its own [`DataLab`] session (so notebook context and
//! history accumulate exactly as in the serial runner) and sessions never
//! observe each other, so shards can execute on any thread in any order.
//! Determinism then rests on two facts:
//!
//! 1. each shard's records depend only on its own prompt sequence (the
//!    simulated model is a pure function of prompt + profile), and
//! 2. the merge step concatenates per-shard records in **shard index
//!    order**, which is precisely the order the serial runner produces
//!    (workload family order, then domain index ascending, then task
//!    order within the domain).
//!
//! The only report fields that vary across runs or thread counts are the
//! wall-clock-derived ones; `FleetReport::comparable` strips those for
//! equality checks and `obsdiff` never gates on them.

use crate::data::Domain;
use crate::fleet::{lab_for_domain, WorkloadSet};
use datalab_core::{DataLabConfig, RunRecord, RunRecorder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of parallel work: a single domain's tasks under one workload
/// family, executed in one fresh platform session.
struct Shard<'a> {
    /// Workload family name passed to `DataLab::query_as`.
    workload: &'static str,
    /// Index of the domain in its workload set (feeds the per-task
    /// trace IDs, which must match the serial runner's).
    domain_idx: usize,
    /// The domain whose tables seed the session.
    domain: &'a Domain,
    /// Questions for this domain, in task order.
    questions: Vec<&'a str>,
}

/// Splits the workload sets into shards in serial-merge order: for each
/// workload family in turn, one shard per referenced domain, domains in
/// ascending index order (matching the serial runner's `BTreeMap` walk).
fn shards(sets: &[WorkloadSet]) -> Vec<Shard<'_>> {
    let mut out = Vec::new();
    for set in sets {
        let mut by_domain: std::collections::BTreeMap<usize, Vec<&str>> =
            std::collections::BTreeMap::new();
        for (domain_idx, question) in &set.tasks {
            if *domain_idx < set.domains.len() {
                by_domain.entry(*domain_idx).or_default().push(question);
            }
        }
        for (domain_idx, questions) in by_domain {
            out.push(Shard {
                workload: set.workload,
                domain_idx,
                domain: &set.domains[domain_idx],
                questions,
            });
        }
    }
    out
}

/// Executes one shard start to finish and returns its run records.
fn run_shard(shard: &Shard<'_>, session_config: &DataLabConfig) -> Vec<RunRecord> {
    let mut lab = lab_for_domain(shard.domain, session_config);
    for (task_idx, question) in shard.questions.iter().enumerate() {
        // Same (workload, domain, task) → same trace ID as the serial
        // runner, keeping the merged report bit-identical.
        let ctx = crate::fleet::task_context(shard.workload, shard.domain_idx, task_idx);
        lab.query_with_context(&ctx, shard.workload, question);
    }
    lab.take_run_records()
}

/// Runs the fleet across `workers` threads and merges the per-shard
/// records in an order identical to the serial runner's, so the report
/// folded from them matches serial output modulo wall-clock fields.
///
/// Scheduling is work-stealing over an atomic shard cursor: threads pull
/// the next unclaimed shard index until none remain, and each finished
/// shard's records land in a slot keyed by that index, so merge order is
/// independent of which thread ran what.
pub(crate) fn run_fleet_sharded(
    sets: &[WorkloadSet],
    workers: usize,
    session_config: &DataLabConfig,
) -> Vec<RunRecord> {
    let shards = shards(sets);
    let slots: Vec<Mutex<Vec<RunRecord>>> =
        (0..shards.len()).map(|_| Mutex::new(Vec::new())).collect();
    let cursor = AtomicUsize::new(0);
    let threads = workers.min(shards.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(shard) = shards.get(idx) else {
                    break;
                };
                let records = run_shard(shard, session_config);
                *slots[idx].lock().expect("shard slot lock") = records;
            });
        }
    });
    let mut recorder = RunRecorder::new();
    for slot in slots {
        recorder.absorb(slot.into_inner().expect("shard slot lock"));
    }
    recorder.into_records()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{generate_workloads, run_fleet, FleetConfig};
    use datalab_core::FleetReport;

    fn config(workers: usize) -> FleetConfig {
        FleetConfig {
            tasks_per_workload: 2,
            workers,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn shards_cover_every_task_in_serial_order() {
        let sets = generate_workloads(&config(1));
        let shards = shards(&sets);
        let sharded_tasks: usize = shards.iter().map(|s| s.questions.len()).sum();
        let total_tasks: usize = sets.iter().map(|s| s.tasks.len()).sum();
        assert_eq!(sharded_tasks, total_tasks);
        // Family order is preserved across the shard list.
        let mut last_family_pos = 0;
        let family_pos = |w: &str| {
            ["nl2sql", "nl2code", "nl2vis", "insight"]
                .iter()
                .position(|f| *f == w)
                .expect("known family")
        };
        for shard in &shards {
            let pos = family_pos(shard.workload);
            assert!(pos >= last_family_pos, "family order broken at {pos}");
            last_family_pos = pos;
        }
    }

    #[test]
    fn parallel_report_matches_serial() {
        let serial = run_fleet(&config(1));
        let parallel = run_fleet(&config(4));
        assert_eq!(serial.comparable(), parallel.comparable());
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 4);
        assert!(parallel.wall_clock_us > 0);
    }

    #[test]
    fn more_workers_than_shards_is_fine() {
        let serial = run_fleet(&config(1));
        let oversubscribed = run_fleet(&FleetConfig {
            tasks_per_workload: 2,
            workers: 64,
            ..FleetConfig::default()
        });
        assert_eq!(serial.comparable(), oversubscribed.comparable());
    }

    #[test]
    fn chaotic_parallel_report_matches_chaotic_serial() {
        // Fault injection is per-session deterministic, so the sharded
        // executor reproduces the serial run even mid-chaos.
        let chaos = |workers| FleetConfig {
            tasks_per_workload: 1,
            workers,
            chaos_rate: 0.3,
            chaos_seed: 11,
            ..FleetConfig::default()
        };
        let serial = run_fleet(&chaos(1));
        let parallel = run_fleet(&chaos(4));
        assert!(serial.resilience.faults > 0, "{:?}", serial.resilience);
        assert_eq!(serial.comparable(), parallel.comparable());
    }

    #[test]
    fn zero_shards_yields_no_records() {
        let records = run_fleet_sharded(&[], 4, &DataLabConfig::default());
        assert!(records.is_empty());
        assert_eq!(FleetReport::from_records(&records).runs, 0);
    }
}
