//! # datalab-core
//!
//! The unified DataLab platform (paper §III): one façade that wires the
//! LLM-based agent framework to the computational-notebook interface,
//! with the three critical modules — Domain Knowledge Incorporation,
//! Inter-Agent Communication, and Cell-based Context Management —
//! composed the way Fig. 2 describes.
//!
//! ```
//! use datalab_core::DataLab;
//! use datalab_frame::{DataFrame, DataType};
//!
//! let mut lab = DataLab::new(Default::default());
//! let df = DataFrame::from_columns(vec![
//!     ("region", DataType::Str, vec!["east".into(), "west".into()]),
//!     ("amount", DataType::Int, vec![10.into(), 20.into()]),
//! ]).unwrap();
//! lab.register_table("sales", df).unwrap();
//! let response = lab.query("What is the total amount by region?");
//! assert!(response.frame.is_some());
//! ```

#![warn(missing_docs)]

pub mod platform;
pub mod recorder;

pub use platform::{DataLab, DataLabConfig, DataLabResponse};
// Transport-resilience configuration surfaces on `DataLabConfig` and
// `DataLab::breaker_state`; re-exported so downstream crates (server,
// workloads, bench) need not depend on datalab-llm directly.
pub use datalab_llm::{BreakerConfig, BreakerState, ChaosConfig, RetryPolicy};
// Request-tracing context threaded through `DataLab::query_with_context`;
// re-exported for the same reason.
pub use datalab_telemetry::{RequestContext, TraceId};
pub use recorder::{
    diff_reports, folded_profile, AllocTotals, FleetReport, LatencyStats, LlmTotals, Regression,
    ResilienceStats, RunRecord, RunRecorder, StageStats, TokenTotals, WorkloadStats,
    LATENCY_BUCKETS_US,
};
// Profile weighting selector for `folded_profile`; re-exported so bench
// and server consume collapsed-stack output without a direct
// datalab-telemetry dependency on the weighting enum.
pub use datalab_telemetry::{folded_total, ProfileWeight};
