//! Enterprise BI scenario (the paper's motivating setting): dirty column
//! names (`shouldincome_after`, `prod_class4_name`), a script history the
//! platform mines for knowledge (Algorithm 1), a jargon glossary, and the
//! "show me the income of TencentBI this year" query from §IV-A.
//!
//! ```sh
//! cargo run --example enterprise_bi
//! ```

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Date, Value};
use datalab::knowledge::{Lineage, Script};

fn main() {
    // A production-style table: cryptic physical names, real data.
    let n = 40;
    let products = ["Tencent BI", "Tencent Cloud", "Tencent Docs"];
    let table = DataFrame::from_columns(vec![
        (
            "prod_class4_name",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(products[i % 3].to_string()))
                .collect(),
        ),
        (
            "shouldincome_after",
            DataType::Float,
            (0..n)
                .map(|i| Value::Float(50.0 + 3.1 * i as f64))
                .collect(),
        ),
        (
            "cost_amt",
            DataType::Float,
            (0..n)
                .map(|i| Value::Float(20.0 + 1.2 * i as f64))
                .collect(),
        ),
        (
            "ftime",
            DataType::Date,
            (0..n)
                .map(|i| Value::Date(Date::new(2026, 1, 5).unwrap().add_days(4 * i as i64)))
                .collect(),
        ),
    ])
    .expect("valid frame");

    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("dwd_biz_income", table)
        .expect("profiling succeeds");

    // The scripts professionals run every day reveal the semantics of the
    // cryptic columns — Algorithm 1 mines them into the knowledge graph.
    let report = lab.ingest_scripts(
        "dwd_biz_income",
        &[
            Script::sql(
                "-- daily income rollup by product line for the finance team\n\
                 SELECT prod_class4_name, SUM(shouldincome_after) AS total_income,\n\
                 shouldincome_after - cost_amt AS margin\n\
                 FROM dwd_biz_income WHERE ftime >= '2026-01-01' GROUP BY prod_class4_name",
            ),
            Script::sql(
                "-- weekly cost monitoring by product line\n\
                 SELECT prod_class4_name, AVG(cost_amt) AS avg_cost\n\
                 FROM dwd_biz_income GROUP BY prod_class4_name",
            ),
        ],
        &Lineage::default(),
    );
    println!(
        "knowledge generated from {} scripts in {} LLM attempts (self-calibration scores: {:?})",
        report.scripts_used, report.map_attempts, report.final_scores
    );

    // Curated glossary entries (the jargon and value aliases of §IV-B).
    lab.add_jargon("gmv", "total income");
    lab.add_value_alias(
        "TencentBI",
        "dwd_biz_income",
        "prod_class4_name",
        "Tencent BI",
    );

    // The paper's flagship ambiguous query now grounds cleanly.
    for question in [
        "show me the income of TencentBI this year",
        "total margin by product line",
        "show gmv by product line",
    ] {
        println!("\n=== Q: {question}");
        let r = lab.query(question);
        println!("rewritten: {}", r.rewritten_query);
        println!("dsl: {}", r.dsl_json);
        if let Some(frame) = &r.frame {
            println!("{}", frame.to_table_string(5));
        }
    }
    println!(
        "\nknowledge graph holds {} nodes; total tokens: {}",
        lab.knowledge_graph().len(),
        lab.tokens_used()
    );
}
