//! Cell-based context management (§VI): build a multi-language notebook
//! by hand, watch the dependency DAG track edits in real time, and see
//! how task-aware context retrieval finds the minimum relevant cells.
//!
//! ```sh
//! cargo run --example notebook_session
//! ```

use datalab::notebook::{
    retrieve_context, CellDag, CellKind, ContextConfig, Notebook, QueryScope, TaskType,
};

fn main() {
    // A notebook a data engineer, scientist, and analyst share.
    let mut nb = Notebook::new();
    let sql = nb.push_sql(
        "SELECT region, amount, day FROM sales WHERE amount > 0",
        "df_sales",
    );
    let clean = nb.push(CellKind::Python, "clean = df_sales.dropna()");
    let agg = nb.push(
        CellKind::Python,
        "totals = clean.groupby('region').agg(total=('amount', 'sum'))",
    );
    let chart = nb.push(
        CellKind::Chart,
        r#"{"mark":"bar","data":"totals","x":{"field":"region"},"y":{"field":"total","aggregate":"sum"}}"#,
    );
    let note = nb.push(
        CellKind::Markdown,
        "## Revenue notes\nThe sales extract double-counts refunds before 2026-02.",
    );
    // An unrelated side quest by another analyst.
    let side = nb.push(
        CellKind::Python,
        "users = load_users()\nsignups = users.count()",
    );

    // Algorithm 3: dependency DAG from variable def/use analysis.
    let mut dag = CellDag::build(&nb);
    println!("dependencies:");
    for cell in nb.cells() {
        println!("  {:?} <- {:?}", cell.id, dag.dependencies(cell.id));
    }
    assert_eq!(dag.dependencies(clean), &[sql]);
    assert_eq!(dag.dependencies(chart), &[agg]);

    // Context retrieval for a notebook-level query: minimum relevant set.
    let sel = retrieve_context(
        &nb,
        &dag,
        "rewrite the sql for df_sales to exclude refunds",
        QueryScope::Notebook,
        TaskType::Sql,
        &ContextConfig::default(),
    );
    println!(
        "\nquery 'rewrite the sql for df_sales…' selects {} cells ({} tokens):",
        sel.cells.len(),
        sel.tokens
    );
    for id in &sel.cells {
        println!(
            "  {:?}: {}",
            id,
            nb.get(*id).unwrap().source.lines().next().unwrap_or("")
        );
    }
    assert!(sel.cells.contains(&sql));
    assert!(!sel.cells.contains(&side), "irrelevant chain pruned");
    // The markdown note is caught by similarity (it mentions the extract).
    assert!(sel.cells.contains(&note));

    // Compare with the no-DAG ablation (Table IV's S1): everything ships.
    let all = retrieve_context(
        &nb,
        &dag,
        "rewrite the sql for df_sales to exclude refunds",
        QueryScope::Notebook,
        TaskType::Sql,
        &ContextConfig {
            use_dag: false,
            ..Default::default()
        },
    );
    println!(
        "\nwithout the DAG the same query ships {} cells / {} tokens ({}x more)",
        all.cells.len(),
        all.tokens,
        all.tokens / sel.tokens.max(1)
    );

    // Live maintenance: edit a cell and the DAG rewires (if it parses).
    nb.modify(chart, r#"{"mark":"bar","data":"clean","x":{"field":"region"},"y":{"field":"amount","aggregate":"sum"}}"#);
    dag.update_cell(&nb, chart);
    assert_eq!(dag.dependencies(chart), &[clean]);
    println!(
        "\nafter editing the chart cell it depends on {:?}",
        dag.dependencies(chart)
    );

    // Syntax-broken edits are rejected, keeping the DAG consistent.
    nb.modify(clean, "clean = df_sales.dropna(");
    assert!(!dag.update_cell(&nb, clean));
    println!("a syntactically-broken edit leaves the DAG untouched");
}
