//! Observability walkthrough: run a multi-query session and inspect what
//! the telemetry layer recorded — the per-query span tree, the token
//! attribution by pipeline stage and agent, the platform-wide metrics
//! registry, a Chrome `trace_event` export you can load at
//! `chrome://tracing` (or <https://ui.perfetto.dev>), the session-level
//! fleet report, and the flight record attached to a failing query.
//!
//! ```sh
//! cargo run --example telemetry_trace
//! ```

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Value};
use datalab::telemetry::render_flight_record;

fn main() {
    let n = 18;
    let sales = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "south"][i % 3].to_string()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(100 + 7 * i as i64)).collect(),
        ),
        (
            "cost",
            DataType::Int,
            (0..n).map(|i| Value::Int(40 + 3 * i as i64)).collect(),
        ),
    ])
    .expect("valid frame");

    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales)
        .expect("profiling succeeds");

    // Every query comes back with a QuerySummary: one span tree rooted at
    // "query", and the token spend broken down by (stage, agent). Labelled
    // runs (`query_as`) let the session's fleet report break statistics
    // down per workload.
    for (workload, question) in [
        ("nl2sql", "What is the total amount by region?"),
        ("nl2sql", "What is the average cost by region?"),
        ("nl2vis", "Draw a bar chart of total cost by region"),
    ] {
        println!("=== [{workload}] Q: {question}\n");
        let r = lab.query_as(workload, question);
        print!("{}", r.telemetry.render());

        // Machine-readable exports ride along on the same summary.
        let trace = r.telemetry.chrome_trace();
        println!(
            "chrome trace: {} bytes, {} events (load at chrome://tracing)",
            trace.len(),
            r.telemetry
                .root()
                .map(|root| root.total_spans())
                .unwrap_or(0),
        );
        println!();
    }

    // The platform-wide registry accumulates across queries: model-call
    // counters, retry counters from every agent, histograms of call sizes.
    println!("=== metrics registry\n");
    let snapshot = lab.telemetry().metrics().snapshot();
    for (name, value) in &snapshot.counters {
        println!("  {name:<26} {value}");
    }
    for (name, h) in &snapshot.histograms {
        println!("  {name:<26} count={} mean={:.1}", h.count, h.mean());
    }
    println!("\nmeter total: {} tokens", lab.tokens_used());
    println!(
        "attributed:  {} tokens",
        lab.telemetry().token_totals().total()
    );

    // A query that cannot succeed: the platform has no "inventory" data,
    // so the vis agent fails and the response carries a flight record —
    // the recorder's events from QueryStart to the failed QueryEnd.
    println!("\n=== a failing query and its flight record\n");
    let mut empty_lab = DataLab::new(DataLabConfig::default());
    let failed = empty_lab.query("draw a pie chart of inventory by warehouse");
    println!("success: {}", failed.success);
    print!("{}", render_flight_record(&failed.flight_record));

    // Every run lands in the session's RunRecorder; the fleet report
    // aggregates pass/fail counts, token totals, per-stage and per-agent
    // latency percentiles, and the error taxonomy.
    println!("\n=== fleet report (multi-query session)\n");
    print!("{}", lab.fleet_report().render());
    println!("\n=== fleet report (failing session)\n");
    print!("{}", empty_lab.fleet_report().render());
}
