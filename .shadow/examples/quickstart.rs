//! Quickstart: load a table, ask questions in natural language, and watch
//! the platform fill the notebook with SQL, chart, and markdown cells.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use datalab::core::{DataLab, DataLabConfig};
use datalab::frame::{DataFrame, DataType, Date, Value};
use datalab::notebook::CellKind;

fn main() {
    // 1. Build some data (any CSV works too — see datalab::frame::csv).
    let n = 24;
    let sales = DataFrame::from_columns(vec![
        (
            "region",
            DataType::Str,
            (0..n)
                .map(|i| Value::Str(["east", "west", "south"][i % 3].to_string()))
                .collect(),
        ),
        (
            "amount",
            DataType::Int,
            (0..n).map(|i| Value::Int(100 + 7 * i as i64)).collect(),
        ),
        (
            "day",
            DataType::Date,
            (0..n)
                .map(|i| Value::Date(Date::new(2026, 1, 1).unwrap().add_days(10 * i as i64)))
                .collect(),
        ),
    ])
    .expect("valid frame");

    // 2. Spin up the platform and register the table (it is profiled
    //    automatically so questions can be grounded).
    let mut lab = DataLab::new(DataLabConfig::default());
    lab.register_table("sales", sales)
        .expect("profiling succeeds");

    // 3. Ask questions. Each answer lands in the notebook as cells.
    for question in [
        "What is the total amount by region?",
        "Draw a bar chart of the total amount by region",
        "Are there anomalies in the amounts? Then forecast the amount for next month",
    ] {
        println!("\n=== Q: {question}");
        let r = lab.query(question);
        println!("plan: {:?}  success: {}", r.plan, r.success);
        if let Some(frame) = &r.frame {
            println!("{}", frame.to_table_string(6));
        }
        if let Some(chart) = &r.chart {
            println!(
                "chart: {} with {} points",
                chart.mark.name(),
                chart.points.len()
            );
        }
        println!("answer: {}", r.answer.lines().next().unwrap_or(""));
    }

    // 4. The notebook now holds the session; its dependency DAG is live.
    println!("\nnotebook cells:");
    for cell in lab.notebook().cells() {
        let kind = match cell.kind {
            CellKind::Sql => "sql",
            CellKind::Python => "python",
            CellKind::Markdown => "markdown",
            CellKind::Chart => "chart",
        };
        println!("  [{kind:8}] {}", cell.source.lines().next().unwrap_or(""));
    }
    println!("\ntotal LLM tokens used: {}", lab.tokens_used());
}
