//! The Domain Knowledge Incorporation pipeline (§IV), stage by stage:
//! Algorithm 1 Map-Reduce generation with self-calibration, knowledge
//! graph organization with alias nodes, task-aware indexing, Algorithm 2
//! coarse-to-fine retrieval, and DSL translation with validation.
//!
//! ```sh
//! cargo run --example knowledge_pipeline
//! ```

use datalab::knowledge::{
    generate_table_knowledge, incorporate, retrieve, GenerationConfig, IncorporateConfig,
    IndexTask, JargonEntry, KnowledgeGraph, KnowledgeIndex, Lineage, RetrievalConfig, Script,
};
use datalab::llm::SimLlm;
use std::collections::BTreeMap;

fn main() {
    let llm = SimLlm::gpt4();
    let schema =
        "table dwd_sales: rgn_cd (str), shouldincome_after (float), cost_amt (float), ftime (date)";

    // --- Stage 1: knowledge generation (Algorithm 1) ---------------------
    let scripts = vec![
        Script::sql(
            "-- daily income rollup by region for the finance team\n\
             SELECT rgn_cd, SUM(shouldincome_after) AS total_income,\n\
             shouldincome_after - cost_amt AS margin\n\
             FROM dwd_sales WHERE ftime >= '2026-01-01' GROUP BY rgn_cd",
        ),
        Script::sql(
            "-- weekly cost monitoring by region\n\
             SELECT rgn_cd, AVG(cost_amt) AS avg_cost FROM dwd_sales GROUP BY rgn_cd",
        ),
        // A near-duplicate that preprocessing should drop.
        Script::sql(
            "-- daily income rollup by region for the finance team\n\
             SELECT rgn_cd, SUM(shouldincome_after) AS total_income,\n\
             shouldincome_after - cost_amt AS margin\n\
             FROM dwd_sales WHERE ftime >= '2026-02-01' GROUP BY rgn_cd",
        ),
    ];
    let (tk, report) = generate_table_knowledge(
        &llm,
        "dwd_sales",
        schema,
        &scripts,
        &Lineage::default(),
        &BTreeMap::new(),
        &GenerationConfig::default(),
    );
    println!(
        "scripts used: {} (deduped: {})",
        report.scripts_used, report.scripts_deduped
    );
    println!("table description: {}", tk.description);
    for col in &tk.columns {
        println!(
            "  column {}: {} | usage: {} | aliases: {:?}",
            col.name, col.description, col.usage, col.aliases
        );
    }
    for d in &tk.derived {
        println!("  derived {} = {}", d.name, d.calculation);
    }

    // --- Stage 2: organization (knowledge graph + glossary) --------------
    let mut graph = KnowledgeGraph::new();
    graph.ingest_table("biz_dw", &tk);
    graph.ingest_jargon(&JargonEntry {
        term: "gmv".into(),
        expansion: "total income".into(),
    });
    let v = graph.ingest_value(
        "dwd_sales",
        "rgn_cd",
        "south china",
        "the southern sales region",
    );
    graph.add_alias("SouthCN", v);
    println!("\nknowledge graph: {} nodes", graph.len());

    // --- Stage 3: utilization (Algorithm 2 retrieval + DSL) --------------
    let index = KnowledgeIndex::build(&graph, IndexTask::Nl2Dsl);
    let query = "show me the gmv of SouthCN this year";
    let retrieved = retrieve(&llm, &graph, &index, query, &RetrievalConfig::default());
    println!("\nretrieved for '{query}':");
    for r in retrieved.iter().take(5) {
        println!("  {:.3}  {}", r.score, graph.knowledge_line(r.node));
    }

    let ctx = incorporate(
        &llm,
        &graph,
        &index,
        schema,
        query,
        &[],
        "2026-07-06",
        &IncorporateConfig::default(),
    );
    println!("\nrewritten query: {}", ctx.rewritten_query);
    println!("validated DSL: {}", ctx.dsl_json);
    let dsl = ctx.dsl.expect("valid DSL");
    println!("compiled SQL: {}", dsl.to_sql(None));
    println!("compiled dscript:\n{}", dsl.to_dscript());
}
