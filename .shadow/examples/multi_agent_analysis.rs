//! Inter-agent communication (§V) under the hood: the proxy agent plans a
//! compound question into subtasks, runs the specialised agents over the
//! FSM protocol, and every exchanged information unit is visible —
//! including what the no-FSM and pure-NL ablations would look like.
//!
//! ```sh
//! cargo run --example multi_agent_analysis
//! ```

use datalab::agents::{CommunicationConfig, ProxyAgent};
use datalab::frame::{DataFrame, DataType, Date, Value};
use datalab::llm::SimLlm;
use datalab::sql::Database;

fn build_db() -> Database {
    let n = 30;
    let mut db = Database::new();
    db.insert(
        "sales",
        DataFrame::from_columns(vec![
            (
                "region",
                DataType::Str,
                (0..n)
                    .map(|i| Value::Str(["east", "west", "south"][i % 3].into()))
                    .collect(),
            ),
            (
                "amount",
                DataType::Int,
                (0..n)
                    .map(|i| Value::Int(if i == 17 { 900 } else { 100 + 4 * i as i64 }))
                    .collect(),
            ),
            (
                "cost",
                DataType::Int,
                (0..n).map(|i| Value::Int(40 + 2 * i as i64)).collect(),
            ),
            (
                "day",
                DataType::Date,
                (0..n)
                    .map(|i| Value::Date(Date::new(2026, 1, 1).unwrap().add_days(7 * i as i64)))
                    .collect(),
            ),
        ])
        .unwrap(),
    );
    db
}

fn main() {
    let db = build_db();
    let llm = SimLlm::gpt4();
    let schema = "table sales: region (str), amount (int), cost (int), day (date)\n\
                  values sales.region: east, west, south";
    let question = "Query the amount data from sales. Are there anomalies in the amount? \
                    What drives amount? Forecast the amount for next month. \
                    Then draw a bar chart of the total amount by region.";

    println!("=== full protocol (FSM + structured information units) ===");
    let proxy = ProxyAgent::new(&llm, CommunicationConfig::default());
    let out = proxy.run_query(&db, schema, "", question, "2026-07-06");
    println!("plan: {:?}", out.plan);
    println!(
        "success: {} (failed roles: {:?})",
        out.success, out.failed_roles
    );
    for unit in &out.units {
        println!(
            "\n--- unit from {} ({} @ t={}) on {} ---\n{}",
            unit.role, unit.action, unit.timestamp, unit.data_source, unit.description
        );
    }
    if let Some(chart) = &out.chart {
        println!(
            "\nchart: {} with {} points",
            chart.mark.name(),
            chart.points.len()
        );
    }
    println!("\nfinal answer:\n{}", out.answer);

    // The ablations of Table III, runnable directly:
    println!("\n=== ablations ===");
    for (label, cfg) in [
        (
            "S1 no FSM (everyone sees everything)",
            CommunicationConfig {
                use_fsm: false,
                ..Default::default()
            },
        ),
        (
            "S2 pure natural language",
            CommunicationConfig {
                structured: false,
                ..Default::default()
            },
        ),
    ] {
        let out = proxy_run(&llm, &db, schema, question, cfg);
        println!("{label}: success={} plan={:?}", out.success, out.plan);
    }
}

fn proxy_run(
    llm: &SimLlm,
    db: &Database,
    schema: &str,
    question: &str,
    cfg: CommunicationConfig,
) -> datalab::agents::ProxyOutcome {
    ProxyAgent::new(llm, cfg).run_query(db, schema, "", question, "2026-07-06")
}
