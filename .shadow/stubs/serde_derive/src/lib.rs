//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline
//! serde stub. Covers exactly the shapes this workspace uses: named
//! structs (field attrs `default` and `skip_serializing_if`, container
//! `rename_all`), newtype/tuple structs, and enums with unit, newtype,
//! and tuple variants (externally tagged, like real serde).
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    key: String,
    default: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    key: String,
    arity: usize,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn lit_str(tok: &TokenTree) -> String {
    let s = tok.to_string();
    s.trim_matches('"').to_string()
}

/// Extracts `(name, value)` pairs from a `#[serde(...)]` bracket group;
/// returns an empty list for non-serde attributes.
fn serde_items(bracket: &proc_macro::Group) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Vec::new(),
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Vec::new(),
    };
    let toks: Vec<TokenTree> = inner.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            let name = id.to_string();
            let mut value = None;
            if let Some(TokenTree::Punct(p)) = toks.get(i + 1) {
                if p.as_char() == '=' {
                    if let Some(tok) = toks.get(i + 2) {
                        value = Some(lit_str(tok));
                        i += 2;
                    }
                }
            }
            out.push((name, value));
        }
        i += 1;
    }
    out
}

fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("PascalCase") => name
            .split('_')
            .map(|part| {
                let mut c = part.chars();
                match c.next() {
                    Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect(),
        Some("snake_case") | None | Some(_) => name.to_string(),
    }
}

/// Counts top-level comma-separated items in a type list, tracking
/// `<...>` nesting (generic arguments contain commas of their own).
fn arity_of(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing = false;
    for tok in &toks {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing = false;
    }
    if trailing {
        count -= 1;
    }
    count
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut rename_all: Option<String> = None;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    for (k, v) in serde_items(g) {
                        if k == "rename_all" {
                            rename_all = v;
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = toks[i + 1].to_string();
                let body = match toks.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Input {
                            name,
                            shape: Shape::Named(parse_fields(g, rename_all.as_deref())),
                        };
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    _ => panic!("serde_derive stub: unsupported struct body for {name}"),
                };
                return Input {
                    name,
                    shape: Shape::Tuple(arity_of(body)),
                };
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                let name = toks[i + 1].to_string();
                let body = match toks.get(i + 2) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                    _ => panic!("serde_derive stub: unsupported enum body for {name}"),
                };
                return Input {
                    name,
                    shape: Shape::Enum(parse_variants(body, rename_all.as_deref())),
                };
            }
            _ => i += 1,
        }
    }
    panic!("serde_derive stub: no struct or enum found in derive input");
}

fn parse_fields(body: &proc_macro::Group, rename_all: Option<&str>) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = false;
        let mut skip_if = None;
        // Leading attributes (doc comments, #[serde(...)]).
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                for (k, v) in serde_items(g) {
                    match k.as_str() {
                        "default" => default = true,
                        "skip_serializing_if" => skip_if = v,
                        _ => {}
                    }
                }
            }
            i += 2;
        }
        // Optional visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive stub: expected field name, got {other}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        let key = rename(&name, rename_all);
        out.push(Field {
            name,
            key,
            default,
            skip_if,
        });
    }
    out
}

fn parse_variants(body: &proc_macro::Group, rename_all: Option<&str>) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive stub: expected variant name, got {other}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                arity = arity_of(g);
                i += 1;
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        let key = rename(&name, rename_all);
        out.push(Variant { name, key, arity });
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut src = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                let insert = format!(
                    "m.insert(\"{key}\".to_string(), \
                     ::serde::Serialize::to_value_s(&self.{name}));\n",
                    key = f.key,
                    name = f.name
                );
                if let Some(pred) = &f.skip_if {
                    src.push_str(&format!(
                        "if !{pred}(&self.{name}) {{ {insert} }}\n",
                        name = f.name
                    ));
                } else {
                    src.push_str(&insert);
                }
            }
            src.push_str("::serde::Value::Object(m)");
            src
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value_s(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value_s(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{name}::{var} => ::serde::Value::String(\"{key}\".to_string()),\n",
                        var = v.name,
                        key = v.key
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{var}(f0) => {{ \
                           let mut m = ::serde::Map::new(); \
                           m.insert(\"{key}\".to_string(), \
                                    ::serde::Serialize::to_value_s(f0)); \
                           ::serde::Value::Object(m) }}\n",
                        var = v.name,
                        key = v.key
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value_s({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{var}({binds}) => {{ \
                               let mut m = ::serde::Map::new(); \
                               m.insert(\"{key}\".to_string(), \
                                        ::serde::Value::Array(vec![{elems}])); \
                               ::serde::Value::Object(m) }}\n",
                            var = v.name,
                            key = v.key,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value_s(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut src = format!(
                "let m = match v {{\n\
                   ::serde::Value::Object(m) => m,\n\
                   other => return Err(::serde::DeError::custom(format!(\n\
                     \"expected object for {name}, got {{other}}\"))),\n\
                 }};\nOk({name} {{\n"
            );
            for f in fields {
                let missing = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    // Mirror serde: absent fields deserialize from null,
                    // so Option fields become None and everything else
                    // reports a missing-field error.
                    format!(
                        "::serde::Deserialize::from_value_d(&::serde::Value::Null)\n\
                           .map_err(|_| ::serde::DeError::custom(\n\
                             \"missing field `{key}` in {name}\"))?",
                        key = f.key
                    )
                };
                src.push_str(&format!(
                    "{fname}: match m.get(\"{key}\") {{\n\
                       Some(v) => ::serde::Deserialize::from_value_d(v)?,\n\
                       None => {missing},\n\
                     }},\n",
                    fname = f.name,
                    key = f.key
                ));
            }
            src.push_str("})");
            src
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value_d(v)?))")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value_d(&a[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Array(a) if a.len() == {n} => \
                     Ok({name}({elems})),\n\
                   other => Err(::serde::DeError::custom(format!(\n\
                     \"expected {n}-element array for {name}, got {{other}}\"))),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "\"{key}\" => Ok({name}::{var}),\n",
                        key = v.key,
                        var = v.name
                    )),
                    1 => tagged_arms.push_str(&format!(
                        "\"{key}\" => Ok({name}::{var}(\
                           ::serde::Deserialize::from_value_d(inner)?)),\n",
                        key = v.key,
                        var = v.name
                    )),
                    n => {
                        let elems: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value_d(&a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{key}\" => match inner {{\n\
                               ::serde::Value::Array(a) if a.len() == {n} => \
                                 Ok({name}::{var}({elems})),\n\
                               other => Err(::serde::DeError::custom(format!(\n\
                                 \"expected {n}-element array for {name}::{var}, \
                                  got {{other}}\"))),\n\
                             }},\n",
                            key = v.key,
                            var = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                   ::serde::Value::String(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => Err(::serde::DeError::custom(format!(\n\
                       \"unknown {name} variant `{{other}}`\"))),\n\
                   }},\n\
                   ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                     let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                     match tag.as_str() {{\n\
                       {tagged_arms}\
                       other => Err(::serde::DeError::custom(format!(\n\
                         \"unknown {name} variant `{{other}}`\"))),\n\
                     }}\n\
                   }},\n\
                   other => Err(::serde::DeError::custom(format!(\n\
                     \"expected {name}, got {{other}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value_d(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl parses")
}
