//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! primitives with the non-poisoning API shape (`read`/`write`/`lock`
//! return guards directly). Poison is treated as unreachable, matching
//! parking_lot semantics for a workspace that never panics mid-guard.
#![allow(clippy::all)]

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}
