//! Offline stand-in for `criterion`: the harness API surface this
//! workspace's benches use, executing each benchmark body exactly once
//! (a smoke run, not a measurement). Keeps `cargo bench` compiling and
//! runnable without the real statistics machinery.
#![allow(clippy::all)]

use std::fmt::Display;

#[derive(Default)]
pub struct Criterion {}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub struct BenchmarkId {
    pub id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        println!("bench {}/{id}: running once (stub)", self.name);
        f(&mut Bencher {});
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        println!("bench {}/{}: running once (stub)", self.name, id.id);
        f(&mut Bencher {}, input);
    }
    pub fn finish(self) {}
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        println!("bench {id}: running once (stub)");
        f(&mut Bencher {});
    }
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
