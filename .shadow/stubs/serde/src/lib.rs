//! Functional offline stand-in for `serde`: a JSON value tree plus
//! `Serialize`/`Deserialize` traits that map types onto it, with the
//! derive macros re-exported from the companion `serde_derive` stub.
//! Only the surface this workspace uses is provided, but everything
//! provided is behaviourally real — values round-trip through text.
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// JSON number preserving integer-ness where possible.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy)]
enum Repr {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn from_i64(v: i64) -> Self {
        Number { repr: Repr::I(v) }
    }
    pub fn from_u64(v: u64) -> Self {
        Number { repr: Repr::U(v) }
    }
    pub fn from_f64(v: f64) -> Self {
        Number { repr: Repr::F(v) }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::I(v) => Some(v),
            Repr::U(v) => i64::try_from(v).ok(),
            Repr::F(_) => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::I(v) => u64::try_from(v).ok(),
            Repr::U(v) => Some(v),
            Repr::F(_) => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self.repr {
            Repr::I(v) => Some(v as f64),
            Repr::U(v) => Some(v as f64),
            Repr::F(v) => Some(v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        if let (Some(a), Some(b)) = (self.as_i64(), other.as_i64()) {
            return a == b;
        }
        if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
            return a == b;
        }
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::I(v) => write!(f, "{v}"),
            Repr::U(v) => write!(f, "{v}"),
            Repr::F(v) => {
                if v.is_finite() {
                    write!(f, "{v:?}")
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// Insertion-ordered string-keyed object map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Number(_))
    }
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn get<I: JsonIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        let mut cur = self;
        for token in pointer.trim_start_matches('/').split('/') {
            let token = token.replace("~1", "/").replace("~0", "~");
            cur = match cur {
                Value::Object(m) => m.get(&token)?,
                Value::Array(a) => a.get(token.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

/// Index argument for [`Value::get`] and `value[...]`.
pub trait JsonIndex {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl JsonIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(m) => m.get(self),
            _ => None,
        }
    }
}

impl JsonIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
}

impl JsonIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl<I: JsonIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}
macro_rules! value_eq_int {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8 i16 i32 i64 u8 u16 u32 u64 usize isize);
impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Maps a value onto the JSON tree.
pub trait Serialize {
    fn to_value_s(&self) -> Value;
}

/// Reconstructs a value from the JSON tree.
pub trait Deserialize: Sized {
    fn from_value_d(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value_s(&self) -> Value {
        (**self).to_value_s()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value_s(&self) -> Value {
        (**self).to_value_s()
    }
}

macro_rules! ser_signed {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value_s(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8 i16 i32 i64 isize);

macro_rules! ser_unsigned {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value_s(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn to_value_s(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Serialize for f32 {
    fn to_value_s(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Serialize for bool {
    fn to_value_s(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value_s(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_value_s(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for char {
    fn to_value_s(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for Value {
    fn to_value_s(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value_s(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value_s(),
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value_s(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value_s).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value_s(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value_s).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value_s(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value_s).collect())
    }
}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value_s(&self) -> Value {
        Value::Array(vec![self.0.to_value_s(), self.1.to_value_s()])
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value_s(&self) -> Value {
        Value::Array(vec![
            self.0.to_value_s(),
            self.1.to_value_s(),
            self.2.to_value_s(),
        ])
    }
}
impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value_s(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value_s());
        }
        Value::Object(m)
    }
}
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value_s(&self) -> Value {
        // Sort for deterministic output, like a BTreeMap would give.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value_s());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_signed {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value_d(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::custom(format!(
                        "expected {}, got {v}", stringify!($t)
                    )))
            }
        }
    )*};
}
de_signed!(i8 i16 i32 i64 isize);

macro_rules! de_unsigned {
    ($($t:ty)*) => {$(
        impl Deserialize for $t {
            fn from_value_d(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::custom(format!(
                        "expected {}, got {v}", stringify!($t)
                    )))
            }
        }
    )*};
}
de_unsigned!(u8 u16 u32 u64 usize);

impl Deserialize for f64 {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected f64, got {v}")))
    }
}
impl Deserialize for f32 {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        f64::from_value_d(v).map(|f| f as f32)
    }
}
impl Deserialize for bool {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v}")))
    }
}
impl Deserialize for String {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(String::from)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v}")))
    }
}
impl Deserialize for char {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value_d(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}
impl Deserialize for Value {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        T::from_value_d(v).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value_d(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value_d).collect(),
            _ => Err(DeError::custom(format!("expected array, got {v}"))),
        }
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 2 => {
                Ok((A::from_value_d(&a[0])?, B::from_value_d(&a[1])?))
            }
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 3 => Ok((
                A::from_value_d(&a[0])?,
                B::from_value_d(&a[1])?,
                C::from_value_d(&a[2])?,
            )),
            _ => Err(DeError::custom("expected 3-element array")),
        }
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => {
                let mut out = BTreeMap::new();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_value_d(val)?);
                }
                Ok(out)
            }
            _ => Err(DeError::custom(format!("expected object, got {v}"))),
        }
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value_d(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => {
                let mut out = HashMap::new();
                for (k, val) in m.iter() {
                    out.insert(k.clone(), V::from_value_d(val)?);
                }
                Ok(out)
            }
            _ => Err(DeError::custom(format!("expected object, got {v}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Text: writer
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as compact JSON (no whitespace) into `out`.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

/// Writes `v` as 2-space-indented JSON into `out`.
pub fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Text: parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::custom(format!("{msg} at byte {}", self.pos))
    }
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn eat(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }
    fn eat_lit(&mut self, lit: &str) -> Result<(), DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }
    fn value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut out = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                loop {
                    out.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(out));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut out = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    out.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(out));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }
    fn string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
    fn hex4(&mut self) -> Result<u32, DeError> {
        // self.pos sits on the 'u'; consume 4 hex digits after it.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(v)
    }
    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err("bad number"))
    }
}

/// Parses a JSON document into a [`Value`].
pub fn parse_json(s: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}
