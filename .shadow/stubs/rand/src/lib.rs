//! Offline stand-in for `rand`: a seeded splitmix64 generator behind
//! the `Rng`/`SeedableRng` surface this workspace uses (`seed_from_u64`,
//! `gen_range` over `Range`/`RangeInclusive`, `gen_bool`). The stream
//! differs from the real `StdRng`, but it is deterministic per seed,
//! which is the property the workspace's tests rely on.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng { state }
    }
}

/// Uniform-sampleable scalar. Mirrors real rand's shape: `SampleRange`
/// has ONE blanket impl per range type over `T: SampleUniform`, which
/// is what lets type inference at `gen_range(-8.0..8.0)` call sites
/// resolve the same way it does with the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_in(start: Self, end: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_in(start: Self, end: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                let span = (end as i128 - start as i128) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range");
                (start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! float_uniform {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_in(start: Self, end: Self, _inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(start < end, "empty gen_range");
                let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
                start + ((end - start) as f64 * unit) as $t
            }
        }
    )*};
}
float_uniform!(f32 f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let (start, end) = self.into_inner();
        T::sample_in(start, end, true, next)
    }
}

pub trait Rng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}
