//! Functional offline stand-in for `serde_json`, backed by the serde
//! stub's value tree: real text parsing/printing, typed `from_str` /
//! `from_value` through the stub `Deserialize` trait, and a `json!`
//! macro (tt-muncher, same grammar as the real one for the shapes this
//! workspace uses).
#![allow(clippy::all)]

use std::fmt;

pub use serde::{Map, Number, Value};

/// Parse/serialize error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_compact(&value.to_value_s(), &mut out);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_pretty(&value.to_value_s(), &mut out, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value_s()
}

/// Parses a JSON document into any deserializable type (including
/// [`Value`] itself).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse_json(s)?;
    Ok(T::from_value_d(&v)?)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value_d(&v)?)
}

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value_s()
}

/// Builds a [`Value`] from a JSON-ish literal, interpolating arbitrary
/// expressions in value position.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- array element muncher: accumulate `json_internal!`-built
    // ----- elements into [$(expr,)*], one element at a time.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr,)*] $last:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),] $($rest)*)
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object muncher: (@object map (current-key-tts) (rest) (copy))
    (@object $object:ident () () ()) => {};
    // Insert a completed key/value pair, then continue.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };
    // Value forms after the colon, most specific first.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ----- entry points
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::__to_value(&$other)
    };
}
